// Integration tests: full offline+online runs across scheduler/policy
// combinations, asserting system-level invariants and the paper's
// qualitative orderings on small workloads.
#include <gtest/gtest.h>

#include "baselines/aalo.h"
#include "baselines/preempt_baselines.h"
#include "baselines/tetris.h"
#include "core/dsp_system.h"
#include "metrics/report.h"
#include "trace/workload.h"

namespace dsp {
namespace {

WorkloadConfig bench_like_config(std::size_t jobs) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.01;
  return cfg;
}

EngineParams medium_params() {
  EngineParams p;
  p.period = 30 * kSecond;
  p.epoch = 3 * kSecond;
  return p;
}

// ---------------------------------------------------------------------

TEST(IntegrationTest, DspSystemRunsEndToEnd) {
  DspSystem dsp;
  const JobSet jobs = WorkloadGenerator(bench_like_config(12), 211).generate();
  const std::size_t expected = total_tasks(jobs);
  const RunMetrics m =
      dsp.run(ClusterSpec::real_cluster(10), jobs, medium_params());
  EXPECT_EQ(m.tasks_finished, expected);
  EXPECT_EQ(m.jobs_finished, 12u);
  EXPECT_EQ(m.disorders, 0u);
  EXPECT_GT(m.makespan, 0);
}

TEST(IntegrationTest, AllSchedulerBaselinesComplete) {
  const JobSet jobs = WorkloadGenerator(bench_like_config(9), 223).generate();
  const std::size_t expected = total_tasks(jobs);

  DspScheduler dsp;
  TetrisScheduler tetris_nodep(TetrisScheduler::Dependency::kNone);
  TetrisScheduler tetris_simdep(TetrisScheduler::Dependency::kSimple);
  AaloScheduler aalo;
  for (Scheduler* sched : std::initializer_list<Scheduler*>{
           &dsp, &tetris_nodep, &tetris_simdep, &aalo}) {
    const RunMetrics m = simulate(ClusterSpec::ec2(6), jobs, *sched, nullptr,
                                  medium_params());
    EXPECT_EQ(m.tasks_finished, expected) << sched->name();
    EXPECT_EQ(m.jobs_finished, 9u) << sched->name();
  }
}

TEST(IntegrationTest, AllPreemptionPoliciesCompleteOnDspSchedule) {
  const JobSet jobs = WorkloadGenerator(bench_like_config(9), 227).generate();
  const std::size_t expected = total_tasks(jobs);

  DspParams params;
  DspPreemption dsp_pp(params);
  DspParams no_pp_params;
  no_pp_params.normalized_pp = false;
  DspPreemption dsp_nopp(no_pp_params);
  AmoebaPolicy amoeba;
  NatjamPolicy natjam;
  SrptPolicy srpt;
  for (PreemptionPolicy* policy : std::initializer_list<PreemptionPolicy*>{
           &dsp_pp, &dsp_nopp, &amoeba, &natjam, &srpt}) {
    DspScheduler sched;  // "our initial schedule for all preemption methods"
    const RunMetrics m = simulate(ClusterSpec::ec2(6), jobs, sched, policy,
                                  medium_params());
    EXPECT_EQ(m.tasks_finished, expected) << policy->name();
  }
}

TEST(IntegrationTest, DspHasZeroDisordersBaselinesMayNot) {
  // The Fig. 6(a) invariant: DSP's disorder count is exactly zero under
  // any load; dependency-blind policies accumulate disorders under
  // contention.
  WorkloadConfig cfg = bench_like_config(12);
  cfg.min_arrival_rate = 60.0;  // heavy contention on a small cluster
  cfg.max_arrival_rate = 80.0;
  const JobSet jobs = WorkloadGenerator(cfg, 229).generate();

  DspParams params;
  DspPreemption dsp_policy(params);
  DspScheduler dsp_sched;
  const RunMetrics dsp_m = simulate(ClusterSpec::ec2(3), jobs, dsp_sched,
                                    &dsp_policy, medium_params());
  EXPECT_EQ(dsp_m.disorders, 0u);

  SrptPolicy srpt;
  DspScheduler srpt_sched;
  const RunMetrics srpt_m = simulate(ClusterSpec::ec2(3), jobs, srpt_sched,
                                     &srpt, medium_params());
  EXPECT_GT(srpt_m.disorders, 0u);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run = [] {
    DspSystem dsp;
    const JobSet jobs = WorkloadGenerator(bench_like_config(8), 233).generate();
    return dsp.run(ClusterSpec::ec2(5), jobs, medium_params());
  };
  const RunMetrics a = run();
  const RunMetrics b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.disorders, b.disorders);
  EXPECT_EQ(a.tasks_finished, b.tasks_finished);
  EXPECT_EQ(a.job_waiting_s, b.job_waiting_s);
}

TEST(IntegrationTest, DspMeetsDeadlinesUnderLightLoad) {
  // Under light load with generous slack, DSP should meet nearly all
  // deadlines.
  WorkloadConfig cfg = bench_like_config(9);
  cfg.min_arrival_rate = 0.5;
  cfg.max_arrival_rate = 1.0;
  const JobSet jobs = WorkloadGenerator(cfg, 239).generate();
  DspSystem dsp;
  const RunMetrics m =
      dsp.run(ClusterSpec::real_cluster(20), jobs, medium_params());
  EXPECT_GE(m.jobs_met_deadline, 8u);
}

TEST(IntegrationTest, DspMakespanNotWorseThanBlindTetris) {
  // The Fig. 5 headline on a small instance: DSP's makespan is no worse
  // than dependency-blind Tetris.
  const JobSet jobs = WorkloadGenerator(bench_like_config(12), 241).generate();
  DspSystem dsp;
  const RunMetrics dsp_m = dsp.run(ClusterSpec::ec2(5), jobs, medium_params());
  TetrisScheduler tetris(TetrisScheduler::Dependency::kNone);
  const RunMetrics tetris_m =
      simulate(ClusterSpec::ec2(5), jobs, tetris, nullptr, medium_params());
  EXPECT_LE(dsp_m.makespan, tetris_m.makespan * 11 / 10);
}

TEST(IntegrationTest, MetricsInternallyConsistent) {
  DspSystem dsp;
  const JobSet jobs = WorkloadGenerator(bench_like_config(9), 251).generate();
  const RunMetrics m = dsp.run(ClusterSpec::ec2(5), jobs, medium_params());
  EXPECT_EQ(m.jobs_met_deadline + m.deadline_misses, m.jobs_finished);
  EXPECT_EQ(m.job_waiting_s.size(), m.jobs_finished);
  EXPECT_GE(m.slot_utilization, 0.0);
  EXPECT_LE(m.slot_utilization, 1.0 + 1e-9);
  EXPECT_GE(m.throughput_tasks_per_ms(), 0.0);
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

TEST(ReportTest, MetricSeriesTableLayout) {
  MetricSeries series({"DSP", "SRPT"}, {150, 300});
  RunMetrics m;
  m.makespan = 10 * kSecond;
  m.tasks_finished = 100;
  series.set(0, 0, m);
  m.makespan = 20 * kSecond;
  series.set(1, 0, m);
  series.set(0, 1, m);
  series.set(1, 1, m);

  const Table t = series.makespan_table("demo");
  const std::string out = t.render();
  EXPECT_NE(out.find("DSP"), std::string::npos);
  EXPECT_NE(out.find("SRPT"), std::string::npos);
  EXPECT_NE(out.find("150"), std::string::npos);
  EXPECT_NE(out.find("10.00"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(ReportTest, ThroughputAndCountTables) {
  MetricSeries series({"A"}, {1});
  RunMetrics m;
  m.makespan = kSecond;
  m.tasks_finished = 500;
  m.disorders = 3;
  m.preemptions = 7;
  m.job_waiting_s = {1.5, 2.5};
  series.set(0, 0, m);
  EXPECT_NE(series.throughput_table("t").render().find("0.5000"),
            std::string::npos);
  EXPECT_NE(series.disorders_table("d").render().find("3"), std::string::npos);
  EXPECT_NE(series.preemptions_table("p").render().find("7"),
            std::string::npos);
  EXPECT_NE(series.waiting_table("w").render().find("2.00"),
            std::string::npos);
}

TEST(ReportTest, SummarizeMentionsKeyNumbers) {
  RunMetrics m;
  m.makespan = 90 * kMinute;
  m.tasks_finished = 1234;
  m.preemptions = 9;
  const std::string s = summarize(m);
  EXPECT_NE(s.find("1h30m"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("preemptions=9"), std::string::npos);
}

}  // namespace
}  // namespace dsp
