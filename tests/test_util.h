// Shared builders and stub policies for the DSP test suite.
#pragma once

#include <vector>

#include "dag/job.h"
#include "sim/engine.h"
#include "sim/policy.h"

namespace dsp::testing {

inline constexpr double kTestRate = 1000.0;  // MIPS of the test reference

/// A job with `n` tasks and no dependencies, each of `size_mi`.
Job make_independent_job(JobId id, std::size_t n, double size_mi,
                         SimTime arrival = 0, SimTime deadline = kMaxTime);

/// A linear chain: task 0 -> 1 -> ... -> n-1.
Job make_chain_job(JobId id, std::size_t n, double size_mi,
                   SimTime arrival = 0, SimTime deadline = kMaxTime);

/// A diamond: 0 -> {1, 2} -> 3.
Job make_diamond_job(JobId id, double size_mi, SimTime arrival = 0,
                     SimTime deadline = kMaxTime);

/// The paper's Fig. 2 example: T1 feeds T2,T3; T2 feeds T4,T5; T3 feeds
/// T6,T7 (0-indexed: 0 -> {1,2}; 1 -> {3,4}; 2 -> {5,6}).
Job make_fig2_job(JobId id, double size_mi = 1000.0, SimTime arrival = 0,
                  SimTime deadline = kMaxTime);

/// The paper's Fig. 3 shapes in one job, as three roots:
///  - A ("T1"):  root with 4 children, no grandchildren.
///  - B ("T6"):  root with 4 children, 1 grandchild under one child.
///  - C ("T11"): root with 4 children, 3 grandchildren spread under them.
/// Returns the job; roots are tasks 0 (A), 5 (B), 11 (C).
Job make_fig3_job(JobId id, double size_mi = 1000.0, SimTime arrival = 0,
                  SimTime deadline = kMaxTime);

/// Places every task on the least-backlogged feasible node in submission
/// order; dispatch is the default (ready-first). The minimal correct
/// scheduler for engine mechanics tests.
class RoundRobinScheduler : public Scheduler {
 public:
  const char* name() const override { return "RoundRobin"; }
  std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                      Engine& engine) override;
};

/// Pins every task of every job to one node (requires it to fit).
class PinnedScheduler : public Scheduler {
 public:
  explicit PinnedScheduler(int node) : node_(node) {}
  const char* name() const override { return "Pinned"; }
  std::vector<TaskPlacement> schedule(const std::vector<JobId>& jobs,
                                      Engine& engine) override;

 private:
  int node_;
};

/// A preemption policy that does nothing (lets epochs tick).
class NullPreemption : public PreemptionPolicy {
 public:
  const char* name() const override { return "Null"; }
  void on_epoch(Engine&) override {}
};

}  // namespace dsp::testing
