// Tests for the declarative scenario layer (sim/scenario.h) and the
// standard factory (scenarios/standard.h): cluster recipes, CLI token
// round-trips, seed derivation, failure-recipe instantiation, equivalence
// of run_scenario with the plain simulate() entry point, and grid-runner
// determinism across thread counts.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dsp_scheduler.h"
#include "core/dsp_system.h"
#include "core/preemption.h"
#include "metrics/report.h"
#include "scenarios/standard.h"
#include "trace/workload.h"

namespace dsp {
namespace {

/// Serialized run outcome with the one nondeterministic field (wall
/// clock) zeroed: equal fingerprints mean bit-identical runs.
std::string fingerprint(RunMetrics m) {
  m.sim_wall_s = 0.0;
  std::ostringstream os;
  write_json(os, m);
  return os.str();
}

/// A small, fast spec used by the run-equivalence tests.
ScenarioSpec small_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.cluster.profile = ClusterProfile::kEc2;
  spec.cluster.nodes = 6;
  spec.workload.job_count = 10;
  spec.workload.task_scale = 0.02;
  return spec;
}

// ------------------------------------------------------------------
// Cluster recipes
// ------------------------------------------------------------------

TEST(ClusterRecipeTest, ProfilesUsePaperNodeCounts) {
  ClusterRecipe r;
  r.profile = ClusterProfile::kRealCluster;
  EXPECT_EQ(make_cluster(r).size(), 50u);
  r.profile = ClusterProfile::kEc2;
  EXPECT_EQ(make_cluster(r).size(), 30u);
  r.profile = ClusterProfile::kUniform;
  EXPECT_EQ(make_cluster(r).size(), 8u);
}

TEST(ClusterRecipeTest, ExplicitNodeCountOverridesDefault) {
  ClusterRecipe r;
  r.profile = ClusterProfile::kEc2;
  r.nodes = 6;
  EXPECT_EQ(make_cluster(r).size(), 6u);
}

TEST(ClusterRecipeTest, InvalidUniformShapeIsRejected) {
  // The recipe feeds ClusterSpec's validating constructor: a zero-rate
  // uniform cluster must throw, not produce an unrunnable spec.
  ClusterRecipe r;
  r.profile = ClusterProfile::kUniform;
  r.cpu_mips = 0.0;
  EXPECT_THROW(make_cluster(r), std::invalid_argument);
}

// ------------------------------------------------------------------
// CLI tokens and display names
// ------------------------------------------------------------------

TEST(ScenarioTokensTest, ClusterProfileTokensRoundTrip) {
  for (ClusterProfile p : {ClusterProfile::kRealCluster, ClusterProfile::kEc2,
                           ClusterProfile::kUniform}) {
    ClusterProfile out;
    ASSERT_TRUE(parse_cluster_profile(to_string(p), out)) << to_string(p);
    EXPECT_EQ(out, p);
  }
  ClusterProfile out;
  EXPECT_FALSE(parse_cluster_profile("palmetto", out));
}

TEST(ScenarioTokensTest, SchedKindTokensParse) {
  const std::vector<std::pair<std::string, SchedKind>> tokens{
      {"dsp", SchedKind::kDsp},
      {"aalo", SchedKind::kAalo},
      {"tetris-simdep", SchedKind::kTetrisSimDep},
      {"tetris-nodep", SchedKind::kTetrisNoDep},
  };
  for (const auto& [token, want] : tokens) {
    SchedKind out;
    ASSERT_TRUE(parse_sched_kind(token, out)) << token;
    EXPECT_EQ(out, want);
  }
  SchedKind out;
  EXPECT_FALSE(parse_sched_kind("fifo", out));
}

TEST(ScenarioTokensTest, PolicyKindTokensParse) {
  const std::vector<std::pair<std::string, PolicyKind>> tokens{
      {"dsp", PolicyKind::kDsp},       {"dsp-nopp", PolicyKind::kDspNoPp},
      {"amoeba", PolicyKind::kAmoeba}, {"natjam", PolicyKind::kNatjam},
      {"srpt", PolicyKind::kSrpt},     {"none", PolicyKind::kNone},
  };
  for (const auto& [token, want] : tokens) {
    PolicyKind out;
    ASSERT_TRUE(parse_policy_kind(token, out)) << token;
    EXPECT_EQ(out, want);
  }
  PolicyKind out;
  EXPECT_FALSE(parse_policy_kind("fcfs", out));
}

TEST(ScenarioTokensTest, DisplayNamesMatchPaperFigures) {
  // The figure tables and JSON reports key on these exact spellings.
  EXPECT_STREQ(to_string(SchedKind::kDsp), "DSP");
  EXPECT_STREQ(to_string(SchedKind::kTetrisSimDep), "TetrisW/SimDep");
  EXPECT_STREQ(to_string(SchedKind::kTetrisNoDep), "TetrisW/oDep");
  EXPECT_STREQ(to_string(PolicyKind::kDspNoPp), "DSPW/oPP");
  EXPECT_STREQ(to_string(PolicyKind::kNone), "none");
}

// ------------------------------------------------------------------
// Seed derivation
// ------------------------------------------------------------------

TEST(ScenarioSeedTest, StableAndSensitiveToBaseAndName) {
  const std::uint64_t a = scenario_seed(42, "alpha");
  EXPECT_EQ(a, scenario_seed(42, "alpha"));
  EXPECT_NE(a, scenario_seed(42, "beta"));
  EXPECT_NE(a, scenario_seed(43, "alpha"));
}

// ------------------------------------------------------------------
// Failure recipes
// ------------------------------------------------------------------

bool same_plan(const FailurePlan& a, const FailurePlan& b) {
  const auto ea = a.sorted_events();
  const auto eb = b.sorted_events();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].at != eb[i].at || ea[i].node != eb[i].node ||
        ea[i].kind != eb[i].kind || ea[i].factor != eb[i].factor)
      return false;
  }
  return true;
}

TEST(FailureRecipeTest, UnpinnedSeedDerivesFromFallback) {
  FailureRecipe r;
  r.kind = FailureRecipe::Kind::kOutages;
  const ClusterSpec cluster = ClusterSpec::ec2();
  EXPECT_TRUE(same_plan(make_failure_plan(r, cluster, 7),
                        make_failure_plan(r, cluster, 7)));
  EXPECT_FALSE(same_plan(make_failure_plan(r, cluster, 7),
                         make_failure_plan(r, cluster, 8)));
}

TEST(FailureRecipeTest, PinnedSeedIgnoresFallback) {
  FailureRecipe r;
  r.kind = FailureRecipe::Kind::kStragglers;
  r.seed = 99;
  const ClusterSpec cluster = ClusterSpec::ec2();
  EXPECT_TRUE(same_plan(make_failure_plan(r, cluster, 7),
                        make_failure_plan(r, cluster, 8)));
}

TEST(FailureRecipeTest, NoneKindYieldsEmptyPlan) {
  EXPECT_TRUE(
      make_failure_plan(FailureRecipe{}, ClusterSpec::ec2(), 7).empty());
}

// ------------------------------------------------------------------
// run_scenario equivalence and the grid runner
// ------------------------------------------------------------------

TEST(RunScenarioTest, DefaultSpecMatchesPlainSimulate) {
  // A default spec must reproduce the headline configuration: DSP
  // scheduler + DSP preemption with Table II knobs, bit for bit.
  const ScenarioSpec spec = small_spec("equiv");
  const RunMetrics via_scenario = run_standard_scenario(spec);

  const JobSet jobs = WorkloadGenerator(spec.workload, spec.seed).generate();
  DspScheduler sched;
  DspPreemption policy;
  const RunMetrics direct =
      simulate(ClusterSpec::ec2(6), jobs, sched, &policy, spec.engine);

  EXPECT_EQ(fingerprint(via_scenario), fingerprint(direct));
}

TEST(RunScenarioTest, NonePolicyRunsOfflineOnly) {
  ScenarioSpec spec = small_spec("offline");
  spec.policy = PolicyKind::kNone;
  const RunMetrics m = run_standard_scenario(spec);
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_EQ(m.jobs_finished, spec.workload.job_count);
}

TEST(ScenarioGridTest, ResultsMatchSequentialAtAnyThreadCount) {
  std::vector<ScenarioSpec> grid;
  for (PolicyKind policy :
       {PolicyKind::kDsp, PolicyKind::kSrpt, PolicyKind::kNone}) {
    ScenarioSpec spec = small_spec(std::string("grid-") + to_string(policy));
    spec.policy = policy;
    grid.push_back(std::move(spec));
  }

  GridOptions one;
  one.threads = 1;
  GridOptions four;
  four.threads = 4;
  const std::vector<RunMetrics> r1 = run_standard_grid(grid, one);
  const std::vector<RunMetrics> r4 = run_standard_grid(grid, four);

  ASSERT_EQ(r1.size(), grid.size());
  ASSERT_EQ(r4.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(fingerprint(r1[i]), fingerprint(r4[i])) << grid[i].name;
    EXPECT_EQ(fingerprint(r1[i]),
              fingerprint(run_standard_scenario(grid[i])))
        << grid[i].name;
  }
}

}  // namespace
}  // namespace dsp
