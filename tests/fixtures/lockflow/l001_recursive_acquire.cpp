// Seeded L001: bump_twice holds mu_gate and calls bump_locked, which
// re-acquires the same non-recursive mutex — self-deadlock that only a
// call-path analysis can see.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <mutex>

namespace {

std::mutex mu_gate;
int counter = 0;

void bump_locked() {
  std::lock_guard<std::mutex> hold(mu_gate);
  ++counter;
}

}  // namespace

void bump_twice() {
  std::lock_guard<std::mutex> hold(mu_gate);
  bump_locked();
}
