// Seeded L003: the tally callback handed to parallel_for writes member
// state (counts_, total_) that carries no DSP_GUARDED_BY annotation and
// is not atomic, so concurrent chunks race on it.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <cstddef>
#include <vector>

namespace {

struct Pool {
  template <typename F>
  void parallel_for(std::size_t n, F&& fn);
};

struct Worker {
  void run_all(std::size_t n);
  std::vector<int> counts_;
  int total_ = 0;
};

Pool pool;

void Worker::run_all(std::size_t n) {
  counts_.resize(n);
  auto tally = [&](std::size_t i) {
    counts_[i] = static_cast<int>(i);
    total_ += static_cast<int>(i);
  };
  pool.parallel_for(n, tally);
}

}  // namespace
