// Seeded L004: mutate_locked is annotated DSP_REQUIRES(gate_), and
// forget_the_lock calls it without holding gate_; take_then_mutate shows
// the compliant path that must stay silent.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <mutex>

#define DSP_REQUIRES(...)

namespace {

std::mutex gate_;
int value = 0;

void mutate_locked() DSP_REQUIRES(gate_) {
  ++value;
}

}  // namespace

void take_then_mutate() {
  std::lock_guard<std::mutex> hold(gate_);
  mutate_locked();
}

void forget_the_lock() {
  mutate_locked();
}
