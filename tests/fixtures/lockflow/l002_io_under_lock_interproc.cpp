// Seeded L002: log_under_lock holds mu_log while calling sink_line,
// whose body blocks on console I/O — the interprocedural form of C001
// (which only sees I/O next to a lock in the same function).
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <cstdio>
#include <mutex>

namespace {

std::mutex mu_log;

void sink_line() { std::printf("tick\n"); }

}  // namespace

void log_under_lock() {
  std::lock_guard<std::mutex> hold(mu_log);
  sink_line();
}
