// Seeded L000: two call paths acquire the pair (mu_a, mu_b) in opposite
// order through helpers, so neither function trips a line rule — only
// the interprocedural lock-order graph sees the ABBA cycle.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <mutex>

namespace {

std::mutex mu_a;
std::mutex mu_b;
int shared_a = 0;
int shared_b = 0;

void helper_b() {
  std::lock_guard<std::mutex> hold_b(mu_b);
  ++shared_b;
}

void helper_a() {
  std::lock_guard<std::mutex> hold_a(mu_a);
  ++shared_a;
}

}  // namespace

void take_a_then_b() {
  std::lock_guard<std::mutex> hold(mu_a);
  helper_b();
}

void take_b_then_a() {
  std::lock_guard<std::mutex> hold(mu_b);
  helper_a();
}
