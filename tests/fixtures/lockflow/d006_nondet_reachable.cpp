// Seeded D006: core_tick itself is clean under the line rules, but its
// call chain reaches a wall-clock read in the util_stamp helper — the
// interprocedural escape D000-D002 cannot see.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <ctime>

namespace {

long util_stamp() {
  return static_cast<long>(time(nullptr));
}

}  // namespace

long core_tick() {
  return util_stamp() + 1;
}
