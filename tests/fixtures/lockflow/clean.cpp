// Clean control fixture for the dsp-flow rules: the (mu_first,
// mu_second) pair is always taken in the same order, nothing blocks or
// reads clocks, and nothing fans out unguarded writes. Must produce zero
// findings under dsp_tidy --flow. The mutation test in lockflow_test
// appends an inverted path to this file's text and expects L000 to
// appear — breaking lock-set propagation across calls would let that
// mutant pass silently.
// Lexical fixture: scanned by dsp_tidy --flow, never compiled.
#include <mutex>

namespace {

std::mutex mu_first;
std::mutex mu_second;
int depth_total = 0;

void inner() {
  std::lock_guard<std::mutex> hold(mu_second);
  ++depth_total;
}

}  // namespace

void outer_one() {
  std::lock_guard<std::mutex> hold(mu_first);
  inner();
}

void outer_two() {
  std::lock_guard<std::mutex> hold(mu_first);
  inner();
}
