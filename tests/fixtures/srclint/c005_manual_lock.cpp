// Seeded violation: C005 (manual lock()/unlock()) and nothing else.
#include <mutex>

void poke(std::mutex& mu, int& counter) {
  mu.lock();
  ++counter;
  mu.unlock();
}
