// Seeded violation: D004 (ad-hoc std::thread) and nothing else.
#include <thread>

void fire_and_join() {
  std::thread worker([] {});
  worker.join();
}
