// Seeded violation: C004 (console I/O outside util/log) and nothing else.
#include <cstdio>

void report_progress(int done, int total) {
  printf("progress %d/%d\n", done, total);
}
