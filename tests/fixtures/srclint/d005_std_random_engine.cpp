// Seeded violation: D005 (<random> engine) and nothing else.
#include <random>

int roll(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<int>(gen() % 6u) + 1;
}
