// Seeded violation: D001 (std::random_device) and nothing else.
#include <random>

unsigned seed_from_os() {
  std::random_device dev;
  return dev();
}
