// Seeded violation: C001 (blocking I/O while a lock is held) and
// nothing else.
#include <cstdio>
#include <mutex>

void checkpoint(std::mutex& mu, const char* path) {
  std::lock_guard<std::mutex> hold(mu);
  FILE* f = fopen(path, "w");
  if (f != nullptr) fclose(f);
}
