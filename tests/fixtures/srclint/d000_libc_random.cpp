// Seeded violation: D000 (libc random source) and nothing else.
#include <cstdlib>

int noise() { return rand() % 100; }
