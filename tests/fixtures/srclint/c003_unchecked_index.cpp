// Seeded violation: C003 (unchecked subscript return in hot-path scope)
// and nothing else.

class SpeedTable {
 public:
  double speed(int node) const { return speeds_[node]; }

 private:
  double speeds_[8] = {};
};
