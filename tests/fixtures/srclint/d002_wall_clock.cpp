// Seeded violation: D002 (wall-clock read) and nothing else.
#include <ctime>

long stamp_now() { return static_cast<long>(time(nullptr)); }
