// Seeded violation: D003 (hash-order container in hot-path scope) and
// nothing else.
#include <unordered_map>

double total_backlog(const std::unordered_map<int, double>& backlog) {
  double sum = 0.0;
  for (const auto& [node, mi] : backlog) sum += mi;
  return sum;
}
