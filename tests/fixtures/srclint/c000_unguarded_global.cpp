// Seeded violation: C000 (mutable file-scope state) and nothing else.
static int g_request_count = 0;

void bump() { ++g_request_count; }
