// Clean fixture: no srclint rule may fire. Exercises the constructs the
// rules must NOT match — comments and strings naming forbidden calls,
// digit separators, snprintf (not printf), identifiers containing
// "time"/"random", and a guarded subscript return.
#include <cassert>
#include <cstdio>
#include <vector>

// Doc text mentioning rand(), time(nullptr) and std::cout must not fire.
static constexpr int kAnswer = 42;

class WaitingTimes {
 public:
  explicit WaitingTimes(int n) : waiting_times_(n, 0.0) {}

  double waiting_time(int task) const {
    assert(static_cast<std::size_t>(task) < waiting_times_.size());
    return waiting_times_[task];
  }

  void format(char* buf, std::size_t size) const {
    const long big = 1'000'000;
    std::snprintf(buf, size, "kAnswer=%d big=%ld s=%s", kAnswer, big,
                  "rand() printf( std::cout time(");
  }

 private:
  std::vector<double> waiting_times_;
};
