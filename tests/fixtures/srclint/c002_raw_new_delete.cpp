// Seeded violation: C002 (raw new/delete) and nothing else.

int* make_buffer(int n) { return new int[n]; }

void destroy_buffer(int* p) { delete[] p; }
