// Seeded V001: unsigned subtraction where the analyzed ranges prove the
// right side can exceed the left — the deadline-chain shape
// t^a = t^d - t^rem evaluated in an unsigned type.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>

uint64_t backlog_gap() {
  uint64_t queued = 250;
  uint64_t served = 400;
  return queued - served;
}
