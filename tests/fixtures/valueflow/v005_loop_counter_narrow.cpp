// Seeded V005: a 32-bit `int` loop counter driven to a 64-bit bound
// whose interval provably exceeds INT32_MAX — the counter overflows
// before the loop terminates.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>

int64_t sum_epochs() {
  int64_t n = 5000000000LL;
  int64_t total = 0;
  for (int i = 0; i < n; ++i) total += i;
  return total;
}
