// Seeded T000: a workload-CSV field parsed with stoi indexes a vector
// with no bounds guard between parse and use.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <string>
#include <vector>

double pick_rate(const std::vector<double>& rates, const std::string& cell) {
  const int k = std::stoi(cell);
  return rates[k];
}
