// Seeded V002: a 64-bit value clamped to [0, 6e9] by program text is
// cast to int32_t, which tops out at 2147483647 — the refined range
// proves the narrowing can overflow.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>

int32_t fold_window(int64_t raw) {
  int64_t window = raw;
  if (window < 0) window = 0;
  if (window > 6000000000LL) window = 6000000000LL;
  return static_cast<int32_t>(window);
}
