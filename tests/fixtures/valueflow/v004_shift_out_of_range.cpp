// Seeded V004: shifting a 32-bit value by an amount whose interval
// reaches the type width (32) — undefined behaviour in C++.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>

uint32_t scale_flags() {
  uint32_t flags = 1;
  int shift = 32;
  return flags << shift;
}
