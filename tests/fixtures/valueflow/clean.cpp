// Clean control fixture for the dsp-dataflow rules: every hazard the
// seeded fixtures demonstrate appears here in its guarded form — the
// divisor is tested positive before dividing, the narrowing cast is
// clamped into range, floats are compared through an epsilon, the
// parsed allocation size is capped with std::min, the env knob is
// range-checked before use, and loop counter/bound widths match. Must
// produce zero findings under dsp_tidy --dataflow.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>
#include <string>
#include <vector>

double env_double(const char* name, double fallback);

double safe_priority(double rem_mi) {
  double rem_s = rem_mi;
  double rate = 0.0;
  if (rem_s > 10.0) rate = 9.5;
  if (rate > 0.0) return rem_s / rate;
  return 0.0;
}

uint64_t safe_gap() {
  uint64_t queued = 450;
  uint64_t served = 400;
  return queued - served;
}

int32_t safe_fold(int64_t raw) {
  int64_t window = raw;
  if (window < 0) window = 0;
  if (window > 1000000) window = 1000000;
  return static_cast<int32_t>(window);
}

bool safe_converged(double target) {
  double share = target * 0.5;
  double prev = share + 1.0;
  double eps = 0.000001;
  double diff = prev - share;
  return diff < eps;
}

uint32_t safe_flags() {
  uint32_t flags = 1;
  int shift = 31;
  return flags << shift;
}

void safe_reserve(std::vector<int>& tasks, const std::string& field) {
  const std::size_t cap = 1024;
  const std::size_t n = std::min(std::stoul(field), cap);
  tasks.reserve(n);
}

double safe_scale() {
  const double raw = env_double("DSP_TICK_SCALE", 1.0);
  if (raw > 0.0 && raw < 100.0) return raw;
  return 1.0;
}

int64_t safe_sum() {
  int64_t n = 100000;
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += i;
  return total;
}
