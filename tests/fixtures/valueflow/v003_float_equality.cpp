// Seeded V003: exact `==` between two computed doubles. Comparing
// against a literal sentinel is sanctioned; comparing two results of
// floating arithmetic is not.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.

bool converged(double target) {
  double share = target * 0.5;
  double prev = share + 1.0;
  return share == prev;
}
