// Seeded V000: the divisor's interval carries a zero witness — `rate`
// is initialized to a hard 0.0 and only conditionally raised, so the
// join at the division still contains the concrete zero path. This is
// the shape of the Formula 13 leaf-priority term 1/t_rem when a node's
// speed factor degrades to zero.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.

double leaf_priority_demo(double rem_mi) {
  double rem_s = rem_mi;
  double rate = 0.0;
  if (rem_s > 10.0) rate = 9.5;
  return rem_s / rate;
}
