// Seeded T003: an environment knob read via env_double flows to its use
// with no clamp or comparison guard anywhere between read and use.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.

double env_double(const char* name, double fallback);

double tick_scale() {
  const double scale = env_double("DSP_TICK_SCALE", 1.0);
  return scale * 2.0;
}
