// Seeded T002: a parsed field flows into vector::reserve with no cap —
// a hostile workload line can demand an arbitrary allocation.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <string>
#include <vector>

void reserve_tasks(std::vector<int>& tasks, const std::string& field) {
  const int n = std::stoi(field);
  tasks.reserve(n);
}
