// Seeded T001: a parsed text field becomes a loop bound, putting the
// trip count under hostile control.
// Lexical fixture: scanned by dsp_tidy --dataflow, never compiled.
#include <cstdint>
#include <string>

int64_t total_ticks(const std::string& field) {
  const int64_t n = std::stoll(field);
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += i;
  return total;
}
