// Tests for DSP's preemption engine (Algorithm 1, PP, adaptive delta) and
// the Amoeba/Natjam/SRPT baselines.
#include <gtest/gtest.h>

#include "baselines/preempt_baselines.h"
#include "core/dsp_system.h"
#include "core/preemption.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_independent_job;
using testing::RoundRobinScheduler;

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

JobSet contended_workload(std::size_t jobs, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;
  cfg.mem_max = 1.8;
  // Tight arrivals to force queueing.
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 40.0;
  return WorkloadGenerator(cfg, seed).generate();
}

ClusterSpec tight_cluster() { return ClusterSpec::uniform(2, 1800.0, 2.0, 2); }

RunMetrics run_policy(PreemptionPolicy* policy, std::size_t jobs,
                      std::uint64_t seed) {
  DspScheduler sched;
  Engine engine(tight_cluster(), contended_workload(jobs, seed), sched, policy,
                fast_params());
  return engine.run();
}

// ---------------------------------------------------------------------
// DSP preemption core behaviour
// ---------------------------------------------------------------------

TEST(DspPreemptionTest, CompletesContentedWorkloadWithZeroDisorders) {
  DspParams params;
  DspPreemption dsp(params);
  const RunMetrics m = run_policy(&dsp, 8, 101);
  EXPECT_EQ(m.disorders, 0u);
  EXPECT_EQ(m.jobs_finished, 8u);
}

TEST(DspPreemptionTest, NeverPreemptsVictimTheWaiterDependsOn) {
  // Single node, one slot. A chain's parent runs; its child waits with a
  // huge fabricated priority. C2 must prevent the child from evicting the
  // parent (the engine would also refuse — but DSP must not even try,
  // which we observe as zero disorders).
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 20000.0, 0, 10 * kMinute));
  DspScheduler sched;
  DspParams params;
  DspPreemption dsp(params);
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                &dsp, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.disorders, 0u);
  EXPECT_EQ(m.preemptions, 0u);
}

TEST(DspPreemptionTest, UrgentTaskPreempts) {
  // Task B's deadline is nearly due (allowable waiting <= epsilon) while a
  // long task with huge slack occupies the slot: B must preempt.
  JobSet jobs;
  // Long-running low-urgency job.
  jobs.push_back(make_independent_job(0, 1, 120000.0, 0, 2 * kHour));
  // Short job arriving just after: scheduled at the next period tick with
  // a deadline that is only barely achievable — urgent immediately.
  jobs.push_back(
      make_independent_job(1, 1, 5000.0, 300 * kMillisecond, 8 * kSecond));
  DspScheduler sched;
  DspParams params;
  params.epsilon = 2 * kSecond;
  DspPreemption dsp(params);
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                &dsp, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_GE(m.preemptions, 1u);
  // The urgent job must meet its deadline thanks to the preemption.
  EXPECT_GE(m.jobs_met_deadline, 1u);
}

TEST(DspPreemptionTest, PreemptableRequiresDeadlineSlack) {
  // The running task has *no* slack (allowable waiting < epoch): DSP must
  // not preempt it even for a higher-priority waiter.
  JobSet jobs;
  // Running job: deadline leaves less slack than one epoch (0.5 s), so it
  // is never preemptable.
  jobs.push_back(make_independent_job(0, 1, 30000.0, 0,
                                      30 * kSecond + 200 * kMillisecond));
  jobs.push_back(make_independent_job(1, 1, 1000.0, 0, 20 * kMinute));
  DspScheduler sched;
  DspParams params;
  DspPreemption dsp(params);
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                &dsp, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.preemptions, 0u);
}

TEST(DspPreemptionTest, PpSuppressesChurnPreemptions) {
  // Property over seeds: with PP enabled, the preemption count never
  // exceeds the count without PP, and some suppressions are recorded
  // whenever preemption pressure exists.
  for (std::uint64_t seed : {111u, 222u, 333u}) {
    DspParams with_pp;
    with_pp.normalized_pp = true;
    with_pp.adaptive_delta = false;
    DspParams no_pp = with_pp;
    no_pp.normalized_pp = false;

    DspPreemption pp_policy(with_pp);
    DspPreemption nopp_policy(no_pp);
    const RunMetrics with_m = run_policy(&pp_policy, 10, seed);
    const RunMetrics without_m = run_policy(&nopp_policy, 10, seed);
    EXPECT_LE(with_m.preemptions, without_m.preemptions) << "seed " << seed;
  }
}

TEST(DspPreemptionTest, AdaptiveDeltaStaysInBounds) {
  DspParams params;
  params.adaptive_delta = true;
  DspPreemption dsp(params);
  run_policy(&dsp, 10, 131);
  EXPECT_GE(dsp.current_delta(), params.delta_min);
  EXPECT_LE(dsp.current_delta(), params.delta_max);
}

TEST(DspPreemptionTest, AdaptiveDeltaShrinksWhenNothingPreempts) {
  // Independent equal tasks contending for one slot: the window considers
  // waiting tasks every epoch, but an extreme rho suppresses every
  // preemption, so the observed preempt fraction is 0 and delta decays.
  DspParams params;
  params.adaptive_delta = true;
  params.rho = 1e9;
  DspPreemption dsp(params);
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 6, 30000.0, 0, 2 * kHour));
  DspScheduler sched;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                &dsp, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_LT(dsp.current_delta(), params.delta);
}

TEST(DspPreemptionTest, NonAdaptiveDeltaStaysFixed) {
  DspParams params;
  params.adaptive_delta = false;
  DspPreemption dsp(params);
  const RunMetrics m = run_policy(&dsp, 8, 137);
  (void)m;
  EXPECT_DOUBLE_EQ(dsp.current_delta(), params.delta);
}

TEST(DspPreemptionTest, NamesReflectPpFlag) {
  DspParams pp;
  EXPECT_STREQ(DspPreemption(pp).name(), "DSP");
  pp.normalized_pp = false;
  EXPECT_STREQ(DspPreemption(pp).name(), "DSPW/oPP");
}

TEST(DspPreemptionTest, CheckpointModeIsCheckpoint) {
  DspPreemption dsp{DspParams{}};
  EXPECT_EQ(dsp.checkpoint_mode(), CheckpointMode::kCheckpoint);
}

// ---------------------------------------------------------------------
// Baseline policies
// ---------------------------------------------------------------------

TEST(BaselinePolicyTest, AllBaselinesCompleteContendedWorkload) {
  AmoebaPolicy amoeba;
  NatjamPolicy natjam;
  SrptPolicy srpt;
  for (PreemptionPolicy* policy :
       std::initializer_list<PreemptionPolicy*>{&amoeba, &natjam, &srpt}) {
    const RunMetrics m = run_policy(policy, 6, 151);
    EXPECT_EQ(m.jobs_finished, 6u) << policy->name();
  }
}

TEST(BaselinePolicyTest, SrptRestartsFromScratch) {
  EXPECT_EQ(SrptPolicy().checkpoint_mode(), CheckpointMode::kRestart);
  EXPECT_EQ(AmoebaPolicy().checkpoint_mode(), CheckpointMode::kCheckpoint);
  EXPECT_EQ(NatjamPolicy().checkpoint_mode(), CheckpointMode::kCheckpoint);
}

TEST(BaselinePolicyTest, SrptPriorityShorterRemainingWins) {
  // Direct unit check of the priority formula via a probe engine.
  JobSet jobs;
  {
    Job job(0, 2);
    job.task(0).size_mi = 1000.0;
    job.task(1).size_mi = 50000.0;
    for (TaskIndex t = 0; t < 2; ++t)
      job.task(t).demand = Resources{1, 1, 0, 0};
    ASSERT_TRUE(job.finalize(1000.0));
    jobs.push_back(std::move(job));
  }
  RoundRobinScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (done) return;
      SrptPolicy srpt;
      p_small = srpt.priority(engine, 0);
      p_large = srpt.priority(engine, 1);
      done = true;
    }
    double p_small = 0, p_large = 0;
    bool done = false;
  } probe;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 1), std::move(jobs), sched,
                &probe, fast_params());
  engine.run();
  EXPECT_GT(probe.p_small, probe.p_large);
}

TEST(BaselinePolicyTest, AmoebaPreemptsLongestRemaining) {
  // One slot: a long task runs; a short task waits. Amoeba must swap them.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 100000.0, 0));
  jobs.push_back(make_independent_job(1, 1, 2000.0, from_seconds(0.2)));
  DspScheduler sched;
  AmoebaPolicy amoeba;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1), std::move(jobs), sched,
                &amoeba, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_GE(m.preemptions, 1u);
  // The short job finishes long before the long one.
  ASSERT_EQ(m.job_waiting_s.size(), 2u);
  EXPECT_LT(m.job_waiting_s.front(), 30.0);
}

TEST(BaselinePolicyTest, NatjamOnlyProductionPreemptsResearch) {
  // Research waiting tasks must never preempt; production ones evict
  // research victims.
  auto make_tiered = [](JobTier running_tier, JobTier waiting_tier) {
    JobSet jobs;
    Job a = make_independent_job(0, 1, 100000.0, 0, 2 * kHour);
    a.set_tier(running_tier);
    Job b = make_independent_job(1, 1, 2000.0, from_seconds(0.2), 2 * kHour);
    b.set_tier(waiting_tier);
    jobs.push_back(std::move(a));
    jobs.push_back(std::move(b));
    return jobs;
  };
  DspScheduler sched;
  {
    NatjamPolicy natjam;
    Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1),
                  make_tiered(JobTier::kResearch, JobTier::kProduction), sched,
                  &natjam, fast_params());
    EXPECT_GE(engine.run().preemptions, 1u);
  }
  {
    DspScheduler sched2;
    NatjamPolicy natjam;
    Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 1),
                  make_tiered(JobTier::kProduction, JobTier::kResearch), sched2,
                  &natjam, fast_params());
    EXPECT_EQ(engine.run().preemptions, 0u);
  }
}

TEST(BaselinePolicyTest, BlindPoliciesGenerateDisorders) {
  // Long chain roots with short dependent tasks under contention: the
  // short unready children outrank the long-running roots under SRPT,
  // which blindly tries to preempt them in — each attempt is a disorder.
  JobSet jobs;
  for (JobId j = 0; j < 6; ++j) {
    Job job(j, 5);
    for (TaskIndex t = 0; t < 5; ++t) {
      job.task(t).size_mi = t == 0 ? 60000.0 : 2000.0;
      job.task(t).demand = Resources{1, 0.4, 0.02, 0.02};
      if (t > 0) job.add_dependency(t - 1, t);
    }
    job.set_arrival(j * 100 * kMillisecond);
    job.set_deadline(j * 100 * kMillisecond + 2 * kHour);
    ASSERT_TRUE(job.finalize(1000.0));
    jobs.push_back(std::move(job));
  }
  DspScheduler sched;
  SrptPolicy srpt;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 2), std::move(jobs), sched,
                &srpt, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_GT(m.disorders, 0u);
}

TEST(BaselinePolicyTest, Names) {
  EXPECT_STREQ(AmoebaPolicy().name(), "Amoeba");
  EXPECT_STREQ(NatjamPolicy().name(), "Natjam");
  EXPECT_STREQ(SrptPolicy().name(), "SRPT");
}

}  // namespace
}  // namespace dsp
