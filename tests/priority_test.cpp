// Tests for dependency-aware priority (Formulas 12-13) against live engine
// state, reproducing the paper's Fig. 2 / Fig. 3 orderings.
#include <gtest/gtest.h>

#include "core/params.h"
#include "core/priority.h"
#include "sim/engine.h"
#include "test_util.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_fig2_job;
using testing::make_fig3_job;
using testing::make_independent_job;
using testing::RoundRobinScheduler;

ClusterSpec one_node() { return ClusterSpec::uniform(1, 1800.0, 2.0, 1); }

/// Captures per-task priorities at the first epoch, then lets the run end.
class PriorityProbe : public PreemptionPolicy {
 public:
  explicit PriorityProbe(const DspParams& params) : priority_(params) {}
  const char* name() const override { return "PriorityProbe"; }
  void on_epoch(Engine& engine) override {
    if (captured_) return;
    range = priority_.compute_all(engine, priorities);
    captured_ = true;
  }
  std::vector<double> priorities;
  DependencyPriority::Range range;

 private:
  DependencyPriority priority_;
  bool captured_ = false;
};

DspParams test_params() {
  DspParams p;
  p.gamma = 0.5;
  return p;
}

// ---------------------------------------------------------------------

TEST(PriorityTest, Fig2RootOutranksEverything) {
  // Fig. 2: T1 feeds two subtrees; with dependency considered, T1 must get
  // the highest priority of the whole job.
  JobSet jobs;
  jobs.push_back(make_fig2_job(0, 20000.0, 0, 10 * kMinute));
  RoundRobinScheduler sched;
  DspParams params = test_params();
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
  engine.run();

  ASSERT_EQ(probe.priorities.size(), 7u);
  for (Gid g = 1; g < 7; ++g)
    EXPECT_GT(probe.priorities[0], probe.priorities[g]) << "vs task " << g;
  // Second level (T2, T3) outranks the leaves it feeds.
  EXPECT_GT(probe.priorities[1], probe.priorities[3]);
  EXPECT_GT(probe.priorities[1], probe.priorities[4]);
  EXPECT_GT(probe.priorities[2], probe.priorities[5]);
  EXPECT_GT(probe.priorities[2], probe.priorities[6]);
}

TEST(PriorityTest, Fig3DeeperDependentsOutrank) {
  // Fig. 3: equal first-level fan-out, but T11 (3 grandchildren) > T6
  // (1 grandchild) > T1 (none).
  JobSet jobs;
  jobs.push_back(make_fig3_job(0, 20000.0, 0, 30 * kMinute));
  RoundRobinScheduler sched;
  DspParams params = test_params();
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
  engine.run();

  const double t1 = probe.priorities[0];
  const double t6 = probe.priorities[5];
  const double t11 = probe.priorities[11];
  EXPECT_GT(t11, t6);
  EXPECT_GT(t6, t1);
}

TEST(PriorityTest, LeafFormulaWeighting) {
  // Two independent tasks, one twice the size: the smaller (shorter
  // remaining time) gets the higher leaf priority when waits are equal.
  JobSet jobs;
  {
    Job job(0, 2);
    job.task(0).size_mi = 30000.0;
    job.task(1).size_mi = 60000.0;
    for (TaskIndex t = 0; t < 2; ++t)
      job.task(t).demand = Resources{1, 1, 0, 0};
    job.set_deadline(10 * kMinute);
    ASSERT_TRUE(job.finalize(1000.0));
    jobs.push_back(std::move(job));
  }
  RoundRobinScheduler sched;
  DspParams params = test_params();
  // Isolate the remaining-time term.
  params.omega1 = 1.0;
  params.omega2 = 0.0;
  params.omega3 = 0.0;
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(ClusterSpec::uniform(1, 1800.0, 2.0, 2), std::move(jobs), sched,
                &probe, ep);
  engine.run();
  EXPECT_GT(probe.priorities[0], probe.priorities[1]);
}

TEST(PriorityTest, WaitingTimeRaisesPriority) {
  // One running task; one waiting (1-slot node). With only the waiting
  // term active, the waiting task's priority must exceed the running one's.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 60000.0, 0, 30 * kMinute));
  RoundRobinScheduler sched;
  DspParams params = test_params();
  params.omega1 = 0.0;
  params.omega2 = 1.0;
  params.omega3 = 0.0;
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 2 * kSecond;
  Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
  engine.run();
  // Task 0 started at ~0 (waiting time 0); task 1 has been waiting 2 s.
  EXPECT_GT(probe.priorities[1], probe.priorities[0]);
}

TEST(PriorityTest, GammaAmplifiesDepth) {
  // Same chain, two gammas: the root's priority grows with gamma because
  // each level multiplies by (gamma + 1).
  auto root_priority = [](double gamma) {
    JobSet jobs;
    jobs.push_back(make_chain_job(0, 4, 30000.0, 0, 30 * kMinute));
    RoundRobinScheduler sched;
    DspParams params;
    params.gamma = gamma;
    PriorityProbe probe(params);
    EngineParams ep;
    ep.period = 1 * kSecond;
    ep.epoch = 500 * kMillisecond;
    Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
    engine.run();
    return probe.priorities[0];
  };
  EXPECT_GT(root_priority(0.9), root_priority(0.1));
}

TEST(PriorityTest, FinishedTasksDropOut) {
  // Short chain on a fast node with long epochs: by the first epoch the
  // root may already be done; its priority must be reported as 0 and the
  // rest must still be internally consistent (no negative counts).
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 100.0, 0, 10 * kMinute));
  RoundRobinScheduler sched;
  DspParams params = test_params();
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 50 * kMillisecond;
  ep.epoch = 200 * kMillisecond;  // 0.1 s per task: root finished by then
  Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
  engine.run();
  EXPECT_DOUBLE_EQ(probe.priorities[0], 0.0);
  EXPECT_GT(probe.range.live_tasks, 0u);
}

TEST(PriorityTest, RangeNeighborGap) {
  DependencyPriority::Range r;
  r.min_p = 1.0;
  r.max_p = 9.0;
  r.live_tasks = 5;
  EXPECT_DOUBLE_EQ(r.mean_neighbor_gap(), 2.0);
  r.live_tasks = 1;
  EXPECT_DOUBLE_EQ(r.mean_neighbor_gap(), 0.0);
}

TEST(PriorityTest, InternalPriorityEqualsWeightedChildSum) {
  // Verify Formula 12 numerically: parent = sum (gamma+1) * child over
  // unfinished children.
  JobSet jobs;
  jobs.push_back(make_fig2_job(0, 20000.0, 0, 10 * kMinute));
  RoundRobinScheduler sched;
  DspParams params = test_params();
  PriorityProbe probe(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(one_node(), std::move(jobs), sched, &probe, ep);
  engine.run();
  const double g1 = params.gamma + 1.0;
  EXPECT_NEAR(probe.priorities[1],
              g1 * (probe.priorities[3] + probe.priorities[4]), 1e-9);
  EXPECT_NEAR(probe.priorities[0],
              g1 * (probe.priorities[1] + probe.priorities[2]), 1e-9);
}

}  // namespace
}  // namespace dsp
