// Unit + property tests for dsp_dag: TaskGraph, Job, validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dag/job.h"
#include "dag/task_graph.h"
#include "dag/validate.h"
#include "test_util.h"
#include "util/rng.h"

namespace dsp {
namespace {

using testing::kTestRate;
using testing::make_chain_job;
using testing::make_diamond_job;
using testing::make_fig2_job;
using testing::make_fig3_job;

TaskGraph make_graph(std::size_t n,
                     std::initializer_list<std::pair<TaskIndex, TaskIndex>> edges) {
  TaskGraph g(n);
  for (auto [p, c] : edges) g.add_edge(p, c);
  EXPECT_TRUE(g.finalize());
  return g;
}

// ---------------------------------------------------------------------
// TaskGraph structure
// ---------------------------------------------------------------------

TEST(TaskGraphTest, EmptyGraphFinalizes) {
  TaskGraph g(0);
  EXPECT_TRUE(g.finalize());
  EXPECT_EQ(g.depth(), 0);
  EXPECT_TRUE(g.topo_order().empty());
}

TEST(TaskGraphTest, SingleTask) {
  TaskGraph g(1);
  ASSERT_TRUE(g.finalize());
  EXPECT_EQ(g.depth(), 1);
  EXPECT_EQ(g.level(0), 1);
  ASSERT_EQ(g.roots().size(), 1u);
  ASSERT_EQ(g.leaves().size(), 1u);
  EXPECT_EQ(g.descendant_count(0), 0u);
}

TEST(TaskGraphTest, ChainLevelsAndDepth) {
  const auto g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.depth(), 4);
  for (TaskIndex t = 0; t < 4; ++t) EXPECT_EQ(g.level(t), static_cast<int>(t) + 1);
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.leaves().size(), 1u);
  EXPECT_EQ(g.descendant_count(0), 3u);
}

TEST(TaskGraphTest, DiamondLevels) {
  const auto g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(g.depth(), 3);
  EXPECT_EQ(g.level(0), 1);
  EXPECT_EQ(g.level(1), 2);
  EXPECT_EQ(g.level(2), 2);
  EXPECT_EQ(g.level(3), 3);
  // Diamond: 3 is counted once despite two paths.
  EXPECT_EQ(g.descendant_count(0), 3u);
}

TEST(TaskGraphTest, ParentsAndChildren) {
  const auto g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.parents(3).size(), 2u);
  EXPECT_EQ(g.parents(0).size(), 0u);
  EXPECT_EQ(g.children(3).size(), 0u);
}

TEST(TaskGraphTest, DuplicateEdgesDeduplicated) {
  TaskGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  ASSERT_TRUE(g.finalize());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.children(0).size(), 1u);
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.finalize());
  EXPECT_FALSE(g.finalized());
}

TEST(TaskGraphTest, TopoOrderRespectsEdges) {
  const auto g = make_graph(6, {{0, 2}, {1, 2}, {2, 3}, {2, 4}, {4, 5}});
  const auto topo = g.topo_order();
  ASSERT_EQ(topo.size(), 6u);
  std::vector<std::size_t> pos(6);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (TaskIndex t = 0; t < 6; ++t)
    for (TaskIndex c : g.children(t)) EXPECT_LT(pos[t], pos[c]);
}

TEST(TaskGraphTest, TopoOrderDeterministicSmallestFirst) {
  // Independent tasks come out in index order (Kahn + min-heap).
  TaskGraph g(4);
  ASSERT_TRUE(g.finalize());
  const auto topo = g.topo_order();
  for (TaskIndex t = 0; t < 4; ++t) EXPECT_EQ(topo[t], t);
}

TEST(TaskGraphTest, DependsOnDirectAndTransitive) {
  const auto g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(g.depends_on(1, 0));
  EXPECT_TRUE(g.depends_on(3, 0));
  EXPECT_FALSE(g.depends_on(0, 3));
  EXPECT_FALSE(g.depends_on(0, 0));
}

TEST(TaskGraphTest, DependsOnSiblingsFalse) {
  const auto g = make_graph(3, {{0, 1}, {0, 2}});
  EXPECT_FALSE(g.depends_on(1, 2));
  EXPECT_FALSE(g.depends_on(2, 1));
}

TEST(TaskGraphTest, DependsOnDiamond) {
  const auto g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_TRUE(g.depends_on(3, 0));
  EXPECT_TRUE(g.depends_on(3, 1));
  EXPECT_TRUE(g.depends_on(3, 2));
  EXPECT_FALSE(g.depends_on(1, 2));
}

TEST(TaskGraphTest, DescendantsPerLevelFig3) {
  // The Fig. 3 discussion: T11 and T6 have the same number of level-1
  // dependents, but T11 has more at level 2, so it outranks T6.
  const Job job = make_fig3_job(0);
  const TaskGraph& g = job.graph();
  const auto a = g.descendants_per_level(0);    // "T1"
  const auto b = g.descendants_per_level(5);    // "T6"
  const auto c = g.descendants_per_level(11);   // "T11"
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 4u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 4u);
  EXPECT_EQ(b[1], 1u);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 4u);
  EXPECT_EQ(c[1], 3u);
}

TEST(TaskGraphTest, ChainsEnumeration) {
  const auto g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto chains = g.chains();
  // Two root->leaf paths: 0-1-3 and 0-2-3.
  ASSERT_EQ(chains.size(), 2u);
  for (const auto& chain : chains) {
    EXPECT_EQ(chain.front(), 0u);
    EXPECT_EQ(chain.back(), 3u);
    EXPECT_EQ(chain.size(), 3u);
  }
}

TEST(TaskGraphTest, ChainsRespectLimit) {
  // A ladder of diamonds has exponentially many chains; the limit caps it.
  TaskGraph g(9);
  for (TaskIndex d = 0; d < 4; ++d) {
    const TaskIndex base = d * 2;
    g.add_edge(base, base + 1);
    g.add_edge(base, base + 2);
    if (base + 3 < 9) {
      g.add_edge(base + 1, base + 3 - 1);  // converge
    }
  }
  ASSERT_TRUE(g.finalize());
  const auto chains = g.chains(3);
  EXPECT_LE(chains.size(), 3u);
}

TEST(TaskGraphTest, IsolatedTasksAreRootsAndLeaves) {
  const auto g = make_graph(3, {{0, 1}});
  const auto roots = g.roots();
  const auto leaves = g.leaves();
  EXPECT_NE(std::find(roots.begin(), roots.end(), 2u), roots.end());
  EXPECT_NE(std::find(leaves.begin(), leaves.end(), 2u), leaves.end());
}

// ---------------------------------------------------------------------
// Property tests over random DAGs
// ---------------------------------------------------------------------

class RandomDagTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagTest, LevelsAreMonotoneAlongEdges) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 60));
  TaskGraph g(n);
  // Random forward edges guarantee acyclicity.
  for (std::size_t e = 0; e < n * 2; ++e) {
    const auto a = static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    const auto b = static_cast<TaskIndex>(
        rng.uniform_int(a + 1, static_cast<std::int64_t>(n) - 1));
    g.add_edge(a, b);
  }
  ASSERT_TRUE(g.finalize());
  for (TaskIndex t = 0; t < n; ++t)
    for (TaskIndex c : g.children(t)) EXPECT_LT(g.level(t), g.level(c));
}

TEST_P(RandomDagTest, TopoOrderIsValidPermutation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 60));
  TaskGraph g(n);
  for (std::size_t e = 0; e < n; ++e) {
    const auto a = static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (a < b) g.add_edge(a, b);
  }
  ASSERT_TRUE(g.finalize());
  const auto topo = g.topo_order();
  std::set<TaskIndex> seen(topo.begin(), topo.end());
  EXPECT_EQ(seen.size(), n);
}

TEST_P(RandomDagTest, DependsOnAgreesWithDescendantSets) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 30));
  TaskGraph g(n);
  for (std::size_t e = 0; e < n * 2; ++e) {
    const auto a = static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    const auto b = static_cast<TaskIndex>(
        rng.uniform_int(a + 1, static_cast<std::int64_t>(n) - 1));
    g.add_edge(a, b);
  }
  ASSERT_TRUE(g.finalize());
  // Reference reachability by DFS per node.
  for (TaskIndex s = 0; s < n; ++s) {
    std::vector<bool> reach(n, false);
    std::vector<TaskIndex> stack{s};
    while (!stack.empty()) {
      const TaskIndex u = stack.back();
      stack.pop_back();
      for (TaskIndex c : g.children(u))
        if (!reach[c]) {
          reach[c] = true;
          stack.push_back(c);
        }
    }
    for (TaskIndex t = 0; t < n; ++t)
      EXPECT_EQ(g.depends_on(t, s), reach[t]) << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Job: finalize, per-level deadlines, critical path
// ---------------------------------------------------------------------

TEST(JobTest, FinalizeAssignsLevels) {
  const Job job = make_diamond_job(1, 1000.0);
  EXPECT_EQ(job.task(0).level, 1);
  EXPECT_EQ(job.task(1).level, 2);
  EXPECT_EQ(job.task(3).level, 3);
}

TEST(JobTest, PerLevelDeadlineRule) {
  // Chain of 3 tasks, 1000 MI each at 1000 MIPS => 1 s each.
  // Job deadline D: level-3 deadline = D; level-2 = D - 1s; level-1 = D - 2s.
  const SimTime d = 100 * kSecond;
  const Job job = make_chain_job(2, 3, 1000.0, 0, d);
  EXPECT_EQ(job.task(2).deadline, d);
  EXPECT_EQ(job.task(1).deadline, d - kSecond);
  EXPECT_EQ(job.task(0).deadline, d - 2 * kSecond);
}

TEST(JobTest, PerLevelDeadlineUsesMaxPerLevel) {
  // Two parallel chains with different sizes; the max execution time at
  // each level is what propagates.
  Job job(3, 4);
  job.task(0).size_mi = 1000.0;  // level 1
  job.task(1).size_mi = 1000.0;  // level 1
  job.task(2).size_mi = 2000.0;  // level 2, 2 s at test rate
  job.task(3).size_mi = 500.0;   // level 2
  for (TaskIndex t = 0; t < 4; ++t) job.task(t).demand = Resources{1, 1, 0, 0};
  job.add_dependency(0, 2);
  job.add_dependency(1, 3);
  job.set_deadline(50 * kSecond);
  ASSERT_TRUE(job.finalize(kTestRate));
  EXPECT_EQ(job.task(2).deadline, 50 * kSecond);
  // Level 1 deadline = D - max level-2 exec = 50 s - 2 s.
  EXPECT_EQ(job.task(0).deadline, 48 * kSecond);
}

TEST(JobTest, NoDeadlineSentinelSurvivesLevelDerivation) {
  // With the kMaxTime "no deadline" sentinel, the per-level rule must
  // propagate the sentinel unchanged instead of subtracting execution
  // times from INT64_MAX — consumers test `deadline == kMaxTime`.
  const Job job = make_chain_job(0, 3, 1000.0);
  for (TaskIndex t = 0; t < 3; ++t)
    EXPECT_EQ(job.task(t).deadline, kMaxTime) << "task " << t;
}

TEST(JobTest, FinalizeRejectsNonPositiveReferenceRate) {
  for (const double rate : {0.0, -5.0}) {
    Job job(0, 1);
    job.task(0).size_mi = 1000.0;
    job.task(0).demand = Resources{1, 1, 0, 0};
    EXPECT_FALSE(job.finalize(rate)) << "rate " << rate;
  }
}

TEST(JobTest, CriticalPathOfChainIsSum) {
  const Job job = make_chain_job(4, 5, 1000.0);
  EXPECT_EQ(job.critical_path_time(kTestRate), 5 * kSecond);
}

TEST(JobTest, CriticalPathOfIndependentIsMax) {
  Job job(5, 3);
  job.task(0).size_mi = 500.0;
  job.task(1).size_mi = 3000.0;
  job.task(2).size_mi = 1000.0;
  for (TaskIndex t = 0; t < 3; ++t) job.task(t).demand = Resources{1, 1, 0, 0};
  ASSERT_TRUE(job.finalize(kTestRate));
  EXPECT_EQ(job.critical_path_time(kTestRate), 3 * kSecond);
}

TEST(JobTest, TotalWork) {
  const Job job = make_chain_job(6, 4, 250.0);
  EXPECT_DOUBLE_EQ(job.total_work_mi(), 1000.0);
}

TEST(JobTest, TotalTasksAcrossSet) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 10.0));
  jobs.push_back(make_diamond_job(1, 10.0));
  EXPECT_EQ(total_tasks(jobs), 7u);
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

TEST(ValidateTest, CleanJobPasses) {
  const Job job = make_fig2_job(0, 1000.0, 0, kMaxTime);
  EXPECT_TRUE(validate_job(job).empty());
}

TEST(ValidateTest, RejectsNonPositiveSize) {
  Job job(0, 1);
  job.task(0).size_mi = 0.0;
  job.task(0).demand = Resources{1, 1, 0, 0};
  ASSERT_TRUE(job.finalize(kTestRate));
  const auto problems = validate_job(job);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("non-positive size"), std::string::npos);
}

TEST(ValidateTest, RejectsNegativeDemand) {
  Job job(0, 1);
  job.task(0).size_mi = 1.0;
  job.task(0).demand = Resources{-1, 1, 0, 0};
  ASSERT_TRUE(job.finalize(kTestRate));
  EXPECT_FALSE(validate_job(job).empty());
}

TEST(ValidateTest, RejectsDeadlineBeforeArrival) {
  const Job job = make_chain_job(0, 2, 1.0, 10 * kSecond, 5 * kSecond);
  const auto problems = validate_job(job);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("deadline"), std::string::npos);
}

TEST(ValidateTest, EnforcesDepthLimit) {
  const Job job = make_chain_job(0, 8, 1.0);
  DagLimits limits;
  limits.max_depth = 5;
  const auto problems = validate_job(job, limits);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.back().find("depth"), std::string::npos);
}

TEST(ValidateTest, EnforcesFanoutLimit) {
  Job job(0, 6);
  for (TaskIndex t = 0; t < 6; ++t) {
    job.task(t).size_mi = 1.0;
    job.task(t).demand = Resources{1, 1, 0, 0};
  }
  for (TaskIndex c = 1; c < 6; ++c) job.add_dependency(0, c);
  ASSERT_TRUE(job.finalize(kTestRate));
  DagLimits limits;
  limits.max_fanout = 4;
  EXPECT_FALSE(validate_job(job, limits).empty());
}

TEST(ValidateTest, ValidateJobsPrefixesJobId) {
  JobSet jobs;
  Job bad(7, 1);
  bad.task(0).size_mi = -1.0;
  bad.task(0).demand = Resources{1, 1, 0, 0};
  EXPECT_TRUE(bad.finalize(kTestRate));
  jobs.push_back(std::move(bad));
  const auto problems = validate_jobs(jobs);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("job 7"), std::string::npos);
}

TEST(ValidateTest, UnfinalizedJobReported) {
  Job job(0, 2);
  job.task(0).size_mi = job.task(1).size_mi = 1.0;
  const auto problems = validate_job(job);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("not finalized"), std::string::npos);
}

}  // namespace
}  // namespace dsp
