// dsp-flow tests: every seeded fixture under tests/fixtures/lockflow
// fires exactly its own interprocedural rule, the clean fixture stays
// silent, the repository's own src/ tree flow-scans clean, and a
// textual mutant of the clean fixture that inverts the lock order
// through a helper is detected — with a propagation-free control mutant
// staying silent, which pins the detection on lock-set propagation
// across calls. Plus black-box coverage of dsp_tidy --flow (exit codes,
// --list-rules, --compdb, --json via json_check).
#include "analysis/lockflow.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cpp_index.h"
#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "analysis/srclint.h"

namespace {

using dsp::analysis::CppIndex;
using dsp::analysis::Report;

std::string fixture(const std::string& name) {
  return std::string(DSP_LOCKFLOW_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::set<std::string> fired_rules(const Report& report) {
  std::set<std::string> ids;
  for (const auto& d : report.diagnostics()) ids.insert(d.rule);
  return ids;
}

std::string dump(const Report& report) {
  std::string all;
  for (const auto& d : report.diagnostics())
    all += d.rule + " " + d.subject + ": " + d.message + "\n";
  return all;
}

/// Runs the flow rules over in-memory source text.
Report analyze_text(const std::string& path, const std::string& text) {
  CppIndex index;
  dsp::analysis::index_source(path, text, index);
  Report report;
  dsp::analysis::analyze_flow_index(index, report);
  return report;
}

void expect_fires_exactly(const std::string& file, const std::string& rule) {
  Report report;
  std::string error;
  ASSERT_TRUE(
      dsp::analysis::analyze_flow_files({fixture(file)}, report, &error))
      << error;
  EXPECT_EQ(fired_rules(report), std::set<std::string>{rule})
      << file << " should fire " << rule << " and nothing else:\n"
      << dump(report);
  EXPECT_GE(report.diagnostics().size(), 1u);
  for (const auto& d : report.diagnostics())
    EXPECT_NE(d.subject.find(".cpp:"), std::string::npos)
        << "subject should be path:line, got " << d.subject;
}

TEST(LockflowTest, SeededFixturesFireExactlyTheirRule) {
  expect_fires_exactly("l000_lock_order_inversion.cpp", "L000");
  expect_fires_exactly("l001_recursive_acquire.cpp", "L001");
  expect_fires_exactly("l002_io_under_lock_interproc.cpp", "L002");
  expect_fires_exactly("l003_parallel_for_race.cpp", "L003");
  expect_fires_exactly("l004_requires_not_held.cpp", "L004");
  expect_fires_exactly("d006_nondet_reachable.cpp", "D006");
}

TEST(LockflowTest, CleanFixtureFiresNothing) {
  Report report;
  std::string error;
  ASSERT_TRUE(dsp::analysis::analyze_flow_files({fixture("clean.cpp")},
                                                report, &error))
      << error;
  EXPECT_TRUE(report.empty()) << dump(report);
}

TEST(LockflowTest, InversionEvidenceNamesBothCallPaths) {
  Report report;
  std::string error;
  ASSERT_TRUE(dsp::analysis::analyze_flow_files(
      {fixture("l000_lock_order_inversion.cpp")}, report, &error))
      << error;
  ASSERT_EQ(report.diagnostics().size(), 1u) << dump(report);
  const std::string& msg = report.diagnostics()[0].message;
  // Complete two-path evidence: both orders stated, both helper hops
  // named with their acquisition sites.
  EXPECT_NE(msg.find("mu_a then mu_b"), std::string::npos) << msg;
  EXPECT_NE(msg.find("mu_b then mu_a"), std::string::npos) << msg;
  EXPECT_NE(msg.find("helper_b"), std::string::npos) << msg;
  EXPECT_NE(msg.find("helper_a"), std::string::npos) << msg;
  EXPECT_NE(msg.find("acquires mu_b"), std::string::npos) << msg;
  EXPECT_NE(msg.find("acquires mu_a"), std::string::npos) << msg;
}

TEST(LockflowTest, MutantInvertedThroughHelperIsDetected) {
  const std::string clean = read_file(fixture("clean.cpp"));
  ASSERT_FALSE(clean.empty());

  // Mutant: reach mu_first through a helper while holding mu_second.
  // Only lock-set propagation across the call edge can see the ABBA
  // cycle with outer_*'s mu_first -> mu_second order.
  const std::string mutant = clean + R"(
namespace {
void helper_first() {
  std::lock_guard<std::mutex> hold(mu_first);
  ++depth_total;
}
}  // namespace

void inverted_path() {
  std::lock_guard<std::mutex> hold(mu_second);
  helper_first();
}
)";
  const Report detected = analyze_text("mutant.cpp", mutant);
  EXPECT_EQ(fired_rules(detected), std::set<std::string>{"L000"})
      << dump(detected);

  // Control: identical call structure but the helper acquires nothing,
  // so there is nothing to propagate and the mutant must stay silent —
  // the detection above really is the propagated lock set.
  const std::string control = clean + R"(
namespace {
void helper_first() {
  ++depth_total;
}
}  // namespace

void inverted_path() {
  std::lock_guard<std::mutex> hold(mu_second);
  helper_first();
}
)";
  const Report silent = analyze_text("control.cpp", control);
  EXPECT_TRUE(silent.empty()) << dump(silent);
}

TEST(LockflowTest, AllowOnAnyChainLineSuppresses) {
  const std::string base =
      "#include <mutex>\n"
      "namespace {\n"
      "std::mutex mu_gate;\n"
      "int counter = 0;\n"
      "void bump_locked() {\n"
      "  std::lock_guard<std::mutex> hold(mu_gate);\n"
      "  ++counter;\n"
      "}\n"
      "}  // namespace\n"
      "void bump_twice() {\n"
      "  std::lock_guard<std::mutex> hold(mu_gate);\n"
      "  bump_locked();\n"
      "}\n";
  EXPECT_EQ(fired_rules(analyze_text("adhoc.cpp", base)),
            std::set<std::string>{"L001"});

  // Allow on the callee's acquisition line — not the call site — must
  // still silence the finding: any hop of the evidence chain counts.
  std::string allowed = base;
  const std::string target = "std::lock_guard<std::mutex> hold(mu_gate);\n  ++counter;";
  const std::size_t pos = allowed.find(target);
  ASSERT_NE(pos, std::string::npos);
  allowed.replace(pos, target.size(),
                  "std::lock_guard<std::mutex> hold(mu_gate);  "
                  "// dsp-tidy: allow(L001)\n  ++counter;");
  EXPECT_TRUE(analyze_text("adhoc.cpp", allowed).empty());
}

TEST(LockflowTest, RepositorySourceFlowScansClean) {
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(dsp::analysis::collect_sources({DSP_SRC_DIR}, files, &error))
      << error;
  ASSERT_GT(files.size(), 40u) << "src/ tree looks truncated";
  Report report;
  ASSERT_TRUE(dsp::analysis::analyze_flow_files(files, report, &error))
      << error;
  EXPECT_TRUE(report.empty()) << dump(report);
}

TEST(LockflowTest, FlowRulesAreInTheCatalog) {
  for (const char* id : {"L000", "L001", "L002", "L003", "L004", "D006"}) {
    const auto* info = dsp::analysis::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->severity, dsp::analysis::Severity::kError) << id;
  }
}

TEST(LockflowTest, CompdbDiscoveryExpandsTranslationUnits) {
  const std::string dir = ::testing::TempDir();
  const std::string compdb = dir + "lockflow_compdb.json";
  {
    std::ofstream out(compdb);
    out << "[{\"directory\": \"" << DSP_LOCKFLOW_FIXTURE_DIR
        << "\", \"file\": \"clean.cpp\", \"command\": \"c++ -c clean.cpp\"},\n"
        << " {\"directory\": \"" << DSP_LOCKFLOW_FIXTURE_DIR
        << "\", \"file\": \"" << fixture("l001_recursive_acquire.cpp")
        << "\", \"command\": \"c++\"}]\n";
  }
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(
      dsp::analysis::collect_sources_from_compdb(compdb, files, &error))
      << error;
  ASSERT_EQ(files.size(), 2u);  // sorted, deduped, no sibling headers here
  EXPECT_NE(files[0].find("clean.cpp"), std::string::npos);
  EXPECT_NE(files[1].find("l001_recursive_acquire.cpp"), std::string::npos);

  std::vector<std::string> none;
  EXPECT_FALSE(dsp::analysis::collect_sources_from_compdb(
      dir + "no_such_compdb.json", none, &error));
  std::remove(compdb.c_str());
}

// ---------------------------------------------------------------------------
// Black-box CLI tests
// ---------------------------------------------------------------------------

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cmd(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CliResult run_tidy(const std::string& args) {
  return run_cmd(std::string(DSP_TIDY_BIN) + " " + args);
}

TEST(DspTidyFlowCliTest, FixtureDirectoryExitsOneNamingEveryFlowRule) {
  const CliResult r =
      run_tidy("--flow " + std::string(DSP_LOCKFLOW_FIXTURE_DIR));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* id : {"L000", "L001", "L002", "L003", "L004", "D006"})
    EXPECT_NE(r.output.find(id), std::string::npos) << id << "\n" << r.output;
  // Line rules must not run in --flow mode (the fixtures contain printf,
  // wall clocks, unguarded globals that would otherwise fire C*/D*).
  EXPECT_EQ(r.output.find("C004"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("D002"), std::string::npos) << r.output;
}

TEST(DspTidyFlowCliTest, FlowSelfScanOfSrcIsCleanAndJsonValidates) {
  const std::string json = ::testing::TempDir() + "dsp_tidy_flow_out.json";
  const CliResult r =
      run_tidy("--flow " + std::string(DSP_SRC_DIR) + " --json " + json);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const CliResult check =
      run_cmd(std::string(DSP_JSON_CHECK_BIN) + " " + json);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  std::remove(json.c_str());
}

TEST(DspTidyFlowCliTest, ListRulesCoversEveryPackAndExitsZero) {
  for (const char* invocation : {"--list-rules", "rules"}) {
    const CliResult r = run_tidy(invocation);
    EXPECT_EQ(r.exit_code, 0);
    for (const char* id : {"D000", "C005", "L000", "L004", "D006"})
      EXPECT_NE(r.output.find(id), std::string::npos) << id << "\n"
                                                      << r.output;
    EXPECT_EQ(r.output.find("W001"), std::string::npos) << r.output;
  }
}

}  // namespace
