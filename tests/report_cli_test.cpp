// Black-box tests of the tools/dsp_report and tools/bench_diff CLIs.
//
// Event logs are generated in-process (engine + flight recorder sink),
// then the installed binaries are driven over them: the analytics mode's
// --json must parse with the documented schema, the diff mode must
// report zero divergence for same-seed runs at different thread counts
// (the determinism guarantee) and must pinpoint the exact first
// differing event in a seeded-mutation log. Binary locations are
// injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dsp_scheduler.h"
#include "core/preemption.h"
#include "obs/events.h"
#include "obs/json.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& bin, const std::string& args) {
  CliResult result;
  const std::string command = bin + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CliResult report(const std::string& args) {
  return run_cli(DSP_REPORT_BIN, args);
}

CliResult bench_diff(const std::string& args) {
  return run_cli(DSP_BENCH_DIFF_BIN, args);
}

/// Runs a contended workload with the recorder streaming to `path`.
void write_log(const std::string& path, int threads, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;
  cfg.mem_max = 1.8;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 40.0;
  const JobSet jobs = WorkloadGenerator(cfg, seed).generate();
  DspScheduler sched;
  DspParams params;
  params.threads = threads;
  DspPreemption policy(params);
  EngineParams ep;
  ep.period = 1 * kSecond;
  ep.epoch = 500 * kMillisecond;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 2), jobs, sched, &policy,
                ep);
  obs::EventLog log(1 << 14);
  ASSERT_TRUE(log.open_sink(path));
  engine.set_event_log(&log);
  engine.run();
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool parse_file(const std::string& path, obs::json::Value& root,
                std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::json::parse(buf.str(), root, &error);
}

TEST(DspReportCliTest, AnalyticsJsonMatchesSchema) {
  const std::string log = tmp_path("report_run.jsonl");
  write_log(log, 1, 913);
  const std::string out = tmp_path("report_run.json");

  const CliResult r = report(log + " --json " + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // The text report carries all three sections.
  EXPECT_NE(r.output.find("Per-job timeline"), std::string::npos);
  EXPECT_NE(r.output.find("queueing_delay"), std::string::npos);
  EXPECT_NE(r.output.find("utilization per epoch"), std::string::npos);

  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(parse_file(out, root, error)) << error;
  for (const char* path :
       {"report", "events", "jobs.count", "jobs.completed",
        "jobs.deadline_met", "queueing_delay_s.count", "queueing_delay_s.p95",
        "preempt_latency_s.count", "preempt.decisions", "utilization.epochs",
        "utilization.mean", "utilization.series", "per_job"})
    EXPECT_NE(root.at_path(path), nullptr) << "missing " << path;
  EXPECT_EQ(root.at_path("jobs.count")->number, 6.0);
  EXPECT_EQ(root.at_path("jobs.completed")->number, 6.0);
  EXPECT_GT(root.at_path("events")->number, 0.0);
  std::remove(log.c_str());
  std::remove(out.c_str());
}

TEST(DspReportCliTest, DiffSameSeedAcrossThreadCountsIsIdentical) {
  const std::string a = tmp_path("diff_t1.jsonl");
  const std::string b = tmp_path("diff_t4.jsonl");
  write_log(a, 1, 331);
  write_log(b, 4, 331);

  const CliResult r = report("diff " + a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("identical"), std::string::npos) << r.output;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(DspReportCliTest, DiffPinpointsSeededMutation) {
  const std::string a = tmp_path("mut_a.jsonl");
  write_log(a, 1, 577);

  // Mutate one field of line 13 (0-based event 12).
  std::vector<std::string> lines;
  {
    std::ifstream in(a);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 13u);
  const std::string b = tmp_path("mut_b.jsonl");
  {
    std::ofstream out(b);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == 12) {
        const std::size_t at = lines[i].find("\"t\":");
        ASSERT_NE(at, std::string::npos);
        lines[i].insert(at + 4, "9");  // shift the timestamp
      }
      out << lines[i] << "\n";
    }
  }

  const std::string json = tmp_path("mut_diff.json");
  const CliResult r = report("diff " + a + " " + b + " --json " + json);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("first divergence at event 12"), std::string::npos)
      << r.output;

  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(parse_file(json, root, error)) << error;
  EXPECT_EQ(root.at_path("divergence")->number, 12.0);
  ASSERT_NE(root.at_path("line_a"), nullptr);
  EXPECT_FALSE(root.at_path("line_a")->string.empty());
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(json.c_str());
}

TEST(DspReportCliTest, DiffCatchesTruncatedLog) {
  const std::string a = tmp_path("trunc_a.jsonl");
  write_log(a, 1, 701);
  std::vector<std::string> lines;
  {
    std::ifstream in(a);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  const std::string b = tmp_path("trunc_b.jsonl");
  {
    std::ofstream out(b);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
  }
  const CliResult r = report("diff " + a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("end of log"), std::string::npos) << r.output;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(DspReportCliTest, UsageAndMissingFilesExitTwo) {
  EXPECT_EQ(report("").exit_code, 2);
  EXPECT_EQ(report("a b c").exit_code, 2);
  EXPECT_EQ(report("--bogus x").exit_code, 2);
  EXPECT_EQ(report(tmp_path("no_such_log.jsonl")).exit_code, 2);
  EXPECT_EQ(report("diff " + tmp_path("nope1") + " " + tmp_path("nope2"))
                .exit_code,
            2);
}

// ---------------------------------------------------------------------
// bench_diff
// ---------------------------------------------------------------------

void write_bench_json(const std::string& path, double a_ns, double b_ns) {
  std::ofstream out(path);
  out << "{\"bench\":\"micro\",\"scalars\":{\"BM_A_ns\":" << a_ns
      << ",\"BM_B_ns\":" << b_ns << "}}\n";
}

TEST(BenchDiffCliTest, PassesWithinThresholdFailsBeyond) {
  const std::string base = tmp_path("bench_base.json");
  const std::string cand = tmp_path("bench_cand.json");
  write_bench_json(base, 100.0, 200.0);
  write_bench_json(cand, 104.0, 195.0);  // +4%, -2.5%

  EXPECT_EQ(bench_diff(base + " " + cand + " --threshold 5").exit_code, 0);

  const CliResult fail =
      bench_diff(base + " " + cand + " --threshold 3");
  EXPECT_EQ(fail.exit_code, 1) << fail.output;
  EXPECT_NE(fail.output.find("REGRESSED"), std::string::npos) << fail.output;
  EXPECT_NE(fail.output.find("BM_A_ns"), std::string::npos) << fail.output;
  std::remove(base.c_str());
  std::remove(cand.c_str());
}

TEST(BenchDiffCliTest, EmptyIntersectionAndBadInputExitTwo) {
  const std::string base = tmp_path("bench_empty.json");
  const std::string other = tmp_path("bench_other.json");
  {
    std::ofstream out(base);
    out << "{\"scalars\":{\"BM_X_ns\":1}}\n";
  }
  {
    std::ofstream out(other);
    out << "{\"scalars\":{\"BM_Y_ns\":1}}\n";
  }
  EXPECT_EQ(bench_diff(base + " " + other).exit_code, 2);

  const std::string bad = tmp_path("bench_bad.json");
  {
    std::ofstream out(bad);
    out << "not json\n";
  }
  EXPECT_EQ(bench_diff(base + " " + bad).exit_code, 2);
  EXPECT_EQ(bench_diff(base).exit_code, 2);  // usage
  std::remove(base.c_str());
  std::remove(other.c_str());
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace dsp
