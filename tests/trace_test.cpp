// Workload generator and trace I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "dag/validate.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace dsp {
namespace {

WorkloadConfig small_config(std::size_t jobs = 9) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.02;  // small/medium/large ~ 4..16/20/40 tasks
  return cfg;
}

// ---------------------------------------------------------------------
// Generator structure
// ---------------------------------------------------------------------

TEST(WorkloadTest, GeneratesRequestedJobCount) {
  const JobSet jobs = WorkloadGenerator(small_config(9), 1).generate();
  EXPECT_EQ(jobs.size(), 9u);
}

TEST(WorkloadTest, SizeClassesCycleEqually) {
  const JobSet jobs = WorkloadGenerator(small_config(9), 1).generate();
  int counts[3] = {0, 0, 0};
  for (const auto& j : jobs) ++counts[static_cast<int>(j.size_class())];
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
}

TEST(WorkloadTest, TaskCountsMatchClasses) {
  Rng rng(5);
  EXPECT_EQ(tasks_for_class(JobSize::kLarge, 1.0, rng), 2000u);
  EXPECT_EQ(tasks_for_class(JobSize::kMedium, 1.0, rng), 1000u);
  const std::size_t small = tasks_for_class(JobSize::kSmall, 1.0, rng);
  EXPECT_GE(small, 200u);
  EXPECT_LE(small, 800u);
  // Scaled counts never drop below 2.
  EXPECT_GE(tasks_for_class(JobSize::kSmall, 0.0001, rng), 2u);
}

TEST(WorkloadTest, ArrivalsAreMonotoneNonNegative) {
  const JobSet jobs = WorkloadGenerator(small_config(20), 3).generate();
  SimTime prev = -1;
  for (const auto& j : jobs) {
    EXPECT_GE(j.arrival(), 0);
    EXPECT_GE(j.arrival(), prev);
    prev = j.arrival();
  }
}

TEST(WorkloadTest, ArrivalRateWithinConfiguredBand) {
  // With rate in [2,5] jobs/min, 300 jobs span roughly 60..150 min.
  WorkloadConfig cfg = small_config(300);
  const JobSet jobs = WorkloadGenerator(cfg, 7).generate();
  const double span_min = to_seconds(jobs.back().arrival()) / 60.0;
  EXPECT_GT(span_min, 300.0 / 5.0 * 0.7);
  EXPECT_LT(span_min, 300.0 / 2.0 * 1.4);
}

TEST(WorkloadTest, JobsAreFinalizedAndValid) {
  WorkloadConfig cfg = small_config(12);
  const JobSet jobs = WorkloadGenerator(cfg, 11).generate();
  DagLimits limits;
  limits.max_depth = cfg.max_levels;
  limits.max_fanout = cfg.max_fanout;
  const auto problems = validate_jobs(jobs, limits);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(WorkloadTest, DagRespectsDepthCap) {
  WorkloadConfig cfg = small_config(30);
  const JobSet jobs = WorkloadGenerator(cfg, 13).generate();
  for (const auto& j : jobs) EXPECT_LE(j.graph().depth(), cfg.max_levels);
}

TEST(WorkloadTest, DagRespectsFanoutCap) {
  WorkloadConfig cfg = small_config(30);
  const JobSet jobs = WorkloadGenerator(cfg, 17).generate();
  for (const auto& j : jobs)
    for (TaskIndex t = 0; t < j.task_count(); ++t)
      EXPECT_LE(j.graph().children(t).size(), cfg.max_fanout);
}

TEST(WorkloadTest, DemandsWithinConfiguredClamps) {
  WorkloadConfig cfg = small_config(15);
  const JobSet jobs = WorkloadGenerator(cfg, 19).generate();
  for (const auto& j : jobs)
    for (const auto& t : j.tasks()) {
      EXPECT_GE(t.demand.cpu, cfg.cpu_min);
      EXPECT_LE(t.demand.cpu, cfg.cpu_max);
      EXPECT_GE(t.demand.mem, cfg.mem_min);
      EXPECT_LE(t.demand.mem, cfg.mem_max);
      EXPECT_DOUBLE_EQ(t.demand.disk, cfg.disk_mb);
      EXPECT_DOUBLE_EQ(t.demand.bw, cfg.bw_mbps);
      EXPECT_GE(t.size_mi, cfg.size_min_mi);
      EXPECT_LE(t.size_mi, cfg.size_max_mi);
    }
}

TEST(WorkloadTest, DeadlineAfterArrivalWithSlack) {
  WorkloadConfig cfg = small_config(15);
  const JobSet jobs = WorkloadGenerator(cfg, 23).generate();
  for (const auto& j : jobs) {
    EXPECT_GT(j.deadline(), j.arrival());
    const SimTime cp = j.critical_path_time(cfg.reference_rate);
    // Deadline slack between the configured min (production) and max
    // (research).
    const double slack =
        static_cast<double>(j.deadline() - j.arrival()) / static_cast<double>(cp);
    EXPECT_GE(slack, cfg.prod_slack_min - 0.01);
    EXPECT_LE(slack, cfg.res_slack_max + 0.01);
  }
}

TEST(WorkloadTest, TiersRoughlyBalanced) {
  WorkloadConfig cfg = small_config(120);
  const JobSet jobs = WorkloadGenerator(cfg, 29).generate();
  int production = 0;
  for (const auto& j : jobs)
    if (j.tier() == JobTier::kProduction) ++production;
  EXPECT_GT(production, 30);
  EXPECT_LT(production, 90);
}

TEST(WorkloadTest, DeterministicBySeed) {
  const JobSet a = WorkloadGenerator(small_config(10), 99).generate();
  const JobSet b = WorkloadGenerator(small_config(10), 99).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival(), b[i].arrival());
    EXPECT_EQ(a[i].deadline(), b[i].deadline());
    ASSERT_EQ(a[i].task_count(), b[i].task_count());
    for (TaskIndex t = 0; t < a[i].task_count(); ++t)
      EXPECT_DOUBLE_EQ(a[i].task(t).size_mi, b[i].task(t).size_mi);
    EXPECT_EQ(a[i].graph().edge_count(), b[i].graph().edge_count());
  }
}

TEST(WorkloadTest, SeedsProduceDifferentWorkloads) {
  const JobSet a = WorkloadGenerator(small_config(10), 1).generate();
  const JobSet b = WorkloadGenerator(small_config(10), 2).generate();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
    if (a[i].arrival() != b[i].arrival()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, MakeJobSingle) {
  WorkloadGenerator gen(small_config(), 31);
  const Job job = gen.make_job(7, JobSize::kMedium, 5 * kSecond);
  EXPECT_EQ(job.id(), 7u);
  EXPECT_EQ(job.arrival(), 5 * kSecond);
  EXPECT_EQ(job.size_class(), JobSize::kMedium);
  EXPECT_TRUE(job.finalized());
}

// ---------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------

TEST(TraceIoTest, RoundTripPreservesWorkload) {
  WorkloadConfig cfg = small_config(6);
  const JobSet original = WorkloadGenerator(cfg, 37).generate();

  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const TraceParseResult parsed =
      read_trace_csv(buffer, cfg.reference_rate);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  ASSERT_EQ(parsed.jobs.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Job& a = original[i];
    const Job& b = parsed.jobs[i];
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.arrival(), b.arrival());
    EXPECT_EQ(a.deadline(), b.deadline());
    EXPECT_EQ(a.size_class(), b.size_class());
    EXPECT_EQ(a.tier(), b.tier());
    ASSERT_EQ(a.task_count(), b.task_count());
    EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
    for (TaskIndex t = 0; t < a.task_count(); ++t) {
      EXPECT_NEAR(a.task(t).size_mi, b.task(t).size_mi,
                  a.task(t).size_mi * 1e-5);
      EXPECT_NEAR(a.task(t).demand.cpu, b.task(t).demand.cpu, 1e-5);
      EXPECT_EQ(a.task(t).level, b.task(t).level);
    }
  }
}

TEST(TraceIoTest, ReportsMalformedRows) {
  std::stringstream in(
      "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
      "size_class,tier,parents\n"
      "0,0,notanumber,1,1,0,0,0,100,small,production,\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.jobs.empty());
}

TEST(TraceIoTest, ReportsWrongFieldCount) {
  std::stringstream in("job_id,task_index\n0,0\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceIoTest, ReportsBadParentReference) {
  std::stringstream in(
      "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
      "size_class,tier,parents\n"
      "0,0,10,1,1,0,0,0,1000000,small,production,9\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.errors.front().find("parent"), std::string::npos);
}

TEST(TraceIoTest, ReportsCyclicJob) {
  std::stringstream in(
      "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
      "size_class,tier,parents\n"
      "0,0,10,1,1,0,0,0,1000000,small,production,1\n"
      "0,1,10,1,1,0,0,0,1000000,small,production,0\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.errors.front().find("cyclic"), std::string::npos);
}

TEST(TraceIoTest, ParsesHandWrittenTrace) {
  std::stringstream in(
      "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
      "size_class,tier,parents\n"
      "3,0,100,1,0.5,0.02,0.02,0,60000000,small,research,\n"
      "3,1,200,1,0.5,0.02,0.02,0,60000000,small,research,0\n"
      "3,2,300,1,0.5,0.02,0.02,0,60000000,small,research,0;1\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  ASSERT_EQ(parsed.jobs.size(), 1u);
  const Job& job = parsed.jobs[0];
  EXPECT_EQ(job.id(), 3u);
  EXPECT_EQ(job.tier(), JobTier::kResearch);
  EXPECT_EQ(job.graph().parents(2).size(), 2u);
  EXPECT_EQ(job.graph().depth(), 3);
}

TEST(TraceIoTest, RoundTripPreservesLocalityFields) {
  WorkloadConfig cfg = small_config(4);
  cfg.locality_nodes = 8;
  cfg.locality_fraction = 1.0;
  const JobSet original = WorkloadGenerator(cfg, 43).generate();
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const TraceParseResult parsed = read_trace_csv(buffer, cfg.reference_rate);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  bool any_input = false;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (TaskIndex t = 0; t < original[i].task_count(); ++t) {
      const Task& a = original[i].task(t);
      const Task& b = parsed.jobs[i].task(t);
      EXPECT_EQ(a.input_nodes, b.input_nodes);
      EXPECT_NEAR(a.input_mb, b.input_mb, std::max(1e-6, a.input_mb * 1e-5));
      any_input = any_input || !a.input_nodes.empty();
    }
  }
  EXPECT_TRUE(any_input);
}

TEST(TraceIoTest, AcceptsLegacyTwelveFieldRows) {
  std::stringstream in(
      "job_id,task_index,size_mi,cpu,mem,disk,bw,arrival_us,deadline_us,"
      "size_class,tier,parents\n"
      "0,0,100,1,0.5,0.02,0.02,0,60000000,small,research,\n");
  const TraceParseResult parsed = read_trace_csv(in, 1000.0);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_TRUE(parsed.jobs[0].task(0).input_nodes.empty());
}

TEST(TraceIoTest, MissingFileReportsError) {
  const TraceParseResult parsed =
      read_trace_csv(std::string("/nonexistent/trace.csv"), 1000.0);
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dsp_trace_test.csv";
  const JobSet original = WorkloadGenerator(small_config(3), 41).generate();
  ASSERT_TRUE(write_trace_csv(path, original));
  const TraceParseResult parsed = read_trace_csv(path, 2660.0);
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.jobs.size(), 3u);
}

}  // namespace
}  // namespace dsp
