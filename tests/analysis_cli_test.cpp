// Black-box tests of the tools/dsp_analyze CLI: every rule's
// seeded-violation fixture must exit nonzero naming the rule, every clean
// fixture (including the shipped examples/ workloads) must exit zero, and
// the --json output must satisfy tools/json_check.
//
// Binary and fixture locations are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& args) {
  CliResult result;
  const std::string command = std::string(DSP_ANALYZE_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(DSP_FIXTURE_DIR) + "/" + name;
}

std::string example_workload(const std::string& name) {
  return std::string(DSP_EXAMPLES_DIR) + "/" + name;
}

void expect_rule_fires(const std::string& args, const std::string& rule) {
  // The rule filter isolates the seeded defect from co-firing rules.
  const CliResult r = run_cli(args + " --rules " + rule);
  EXPECT_EQ(r.exit_code, 1) << rule << ": " << r.output;
  EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
}

TEST(DspAnalyzeCliTest, SeededWorkloadViolations) {
  expect_rule_fires("workload " + fixture("w000_malformed.csv"), "W000");
  expect_rule_fires("workload " + fixture("w001_cycle.csv"), "W001");
  expect_rule_fires("workload " + fixture("w002_bad_parent.csv"), "W002");
  expect_rule_fires("workload " + fixture("w003_tight_deadline.csv"), "W003");
  expect_rule_fires("workload " + fixture("w004_oversized_demand.csv"), "W004");
  expect_rule_fires("workload " + fixture("w005_invalid_structure.csv"),
                    "W005");
}

TEST(DspAnalyzeCliTest, SeededScheduleViolations) {
  expect_rule_fires("schedule " + fixture("s000_malformed.json"), "S000");
  expect_rule_fires("schedule " + fixture("s001_dependency_order.json"),
                    "S001");
  expect_rule_fires("schedule " + fixture("s002_node_overlap.json"), "S002");
  expect_rule_fires("schedule " + fixture("s003_deadline_violation.json"),
                    "S003");
  expect_rule_fires("schedule " + fixture("s004_unplaced_task.json"), "S004");
  expect_rule_fires("schedule " + fixture("s005_makespan_understated.json"),
                    "S005");
}

TEST(DspAnalyzeCliTest, SeededAuditViolations) {
  const std::string w = " --workload " + fixture("audit_workload.csv");
  expect_rule_fires("audit " + fixture("p000_malformed.json"), "P000");
  expect_rule_fires("audit " + fixture("p001_monotonicity.json") + w, "P001");
  expect_rule_fires("audit " + fixture("p002_priority_gap.json"), "P002");
  expect_rule_fires("audit " + fixture("p003_dependency_on_victim.json") + w,
                    "P003");
  expect_rule_fires("audit " + fixture("p004_rho_normalization.json"), "P004");
}

TEST(DspAnalyzeCliTest, CleanFixturesExitZero) {
  for (const std::string& args :
       {"workload " + fixture("clean_workload.csv"),
        "schedule " + fixture("clean_schedule.json"),
        "audit " + fixture("clean_audit.json") + " --workload " +
            fixture("audit_workload.csv")}) {
    const CliResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 0) << args << "\n" << r.output;
    EXPECT_NE(r.output.find("clean:"), std::string::npos) << r.output;
  }
}

TEST(DspAnalyzeCliTest, ExampleWorkloadsAnalyzeClean) {
  for (const char* name : {"etl_pipeline.csv", "mapreduce_fanout.csv",
                           "ml_training_locality.csv"}) {
    const CliResult r = run_cli("workload " + example_workload(name));
    EXPECT_EQ(r.exit_code, 0) << name << "\n" << r.output;
  }
}

TEST(DspAnalyzeCliTest, JsonOutputPassesJsonCheck) {
  const std::string json = ::testing::TempDir() + "dsp_analyze_out.json";
  const CliResult r = run_cli("workload " + fixture("w001_cycle.csv") +
                              " --json " + json);
  EXPECT_EQ(r.exit_code, 1);
  const std::string check = std::string(DSP_JSON_CHECK_BIN) + " " + json +
                            " analyzer input.kind input.path diagnostics "
                            "summary.error 2>&1";
  FILE* pipe = popen(check.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) output += buf.data();
  const int status = pclose(pipe);
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0) << output;
  std::remove(json.c_str());
}

TEST(DspAnalyzeCliTest, JsonToStdoutContainsTheDiagnostic) {
  const CliResult r =
      run_cli("workload " + fixture("w001_cycle.csv") + " --json -");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"analyzer\": \"dsp-analyze\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"W001\""), std::string::npos) << r.output;
}

TEST(DspAnalyzeCliTest, UsageAndBadFlagsExitTwo) {
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("workload").exit_code, 2);
  EXPECT_EQ(run_cli("frobnicate x").exit_code, 2);
  EXPECT_EQ(run_cli("workload x --rules Z999").exit_code, 2);
  EXPECT_EQ(run_cli("workload x --cluster moon:4").exit_code, 2);
  // A missing input is an analyzable parse failure, not a usage error.
  EXPECT_EQ(run_cli("workload /nonexistent.csv").exit_code, 1);
}

TEST(DspAnalyzeCliTest, RulesModeListsTheCatalog) {
  const CliResult r = run_cli("rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* id : {"W001", "W003", "S001", "S005", "P001", "P004"})
    EXPECT_NE(r.output.find(id), std::string::npos) << id;
}

}  // namespace
