// Tests for the LP/MILP substrate: simplex on known instances, property
// checks against brute force, branch & bound on integer programs.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/milp.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace dsp::lp {
namespace {

// ---------------------------------------------------------------------
// Model basics
// ---------------------------------------------------------------------

TEST(ModelTest, ObjectiveValue) {
  Model m;
  const VarId x = m.add_var(0, 10, 2.0);
  const VarId y = m.add_var(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
  (void)x;
  (void)y;
}

TEST(ModelTest, FeasibilityCheck) {
  Model m;
  m.add_var(0, 5, 1.0);
  LinearExpr e;
  e.add(0, 1.0);
  m.add_constraint(std::move(e), Sense::kLe, 3.0);
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_FALSE(m.is_feasible({4.0}));   // violates constraint
  EXPECT_FALSE(m.is_feasible({-1.0}));  // violates lower bound
}

TEST(ModelTest, IntegralityInFeasibility) {
  Model m;
  m.add_int_var(0, 5, 1.0);
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_FALSE(m.is_feasible({2.5}));
}

TEST(ModelTest, HasIntegers) {
  Model m;
  m.add_var(0, 1, 1.0);
  EXPECT_FALSE(m.has_integers());
  m.add_binary_var(1.0);
  EXPECT_TRUE(m.has_integers());
}

// ---------------------------------------------------------------------
// Simplex: known instances
// ---------------------------------------------------------------------

TEST(SimplexTest, SimpleMaximize) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  => (4,0), obj 12.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var(0, kInf, 3.0);
  const VarId y = m.add_var(0, kInf, 2.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kLe, 4);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 6);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.x[0], 4.0, 1e-6);
  EXPECT_NEAR(s.x[1], 0.0, 1e-6);
}

TEST(SimplexTest, SimpleMinimizeWithGe) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1 => x=9? obj: prefer x
  // (cheaper): x + y = 10 with max x: y = 1, x = 9 -> obj 21.
  Model m;
  const VarId x = m.add_var(2, kInf, 2.0);
  const VarId y = m.add_var(1, kInf, 3.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kGe, 10);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 21.0, 1e-6);
  EXPECT_NEAR(s.x[0], 9.0, 1e-6);
  EXPECT_NEAR(s.x[1], 1.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x,y >= 0 => y=2, x=0, obj 2.
  Model m;
  const VarId x = m.add_var(0, kInf, 1.0);
  const VarId y = m.add_var(0, kInf, 1.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 2), Sense::kEq, 4);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 2.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var(0, 1, 1.0);
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, 5);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleBoundCross) {
  Model m;
  m.add_var(3, 1, 1.0);  // lower > upper
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, kInf, 1.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsUpperBounds) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, 7, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, 1e-9);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -5 handled via free split: x in (-inf, inf), x+3 >= 0.
  Model m;
  const VarId x = m.add_var(-kInf, kInf, 1.0);
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, -5);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-6);
}

TEST(SimplexTest, NegativeLowerBound) {
  Model m;
  const VarId x = m.add_var(-10, 10, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -10.0, 1e-6);
  (void)x;
}

TEST(SimplexTest, DegenerateTerminates) {
  // Classic degenerate LP; Bland's rule must terminate.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x1 = m.add_var(0, kInf, 10.0);
  const VarId x2 = m.add_var(0, kInf, -57.0);
  const VarId x3 = m.add_var(0, kInf, -9.0);
  const VarId x4 = m.add_var(0, kInf, -24.0);
  m.add_constraint(
      LinearExpr().add(x1, 0.5).add(x2, -5.5).add(x3, -2.5).add(x4, 9), Sense::kLe,
      0);
  m.add_constraint(
      LinearExpr().add(x1, 0.5).add(x2, -1.5).add(x3, -0.5).add(x4, 1), Sense::kLe,
      0);
  m.add_constraint(LinearExpr().add(x1, 1.0), Sense::kLe, 1);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SimplexTest, MultipleConstraintsVertex) {
  // min -x - y s.t. 2x + y <= 10, x + 3y <= 15 => vertex (3, 4), obj -7.
  Model m;
  const VarId x = m.add_var(0, kInf, -1.0);
  const VarId y = m.add_var(0, kInf, -1.0);
  m.add_constraint(LinearExpr().add(x, 2).add(y, 1), Sense::kLe, 10);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 15);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-6);
  EXPECT_NEAR(s.x[1], 4.0, 1e-6);
}

// ---------------------------------------------------------------------
// Simplex property tests: random LPs vs random feasible points
// ---------------------------------------------------------------------

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, SolutionFeasibleAndNotBeatenByRandomPoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int nvars = static_cast<int>(rng.uniform_int(1, 5));
  const int ncons = static_cast<int>(rng.uniform_int(1, 6));

  Model m;
  std::vector<double> ub(static_cast<std::size_t>(nvars));
  for (int v = 0; v < nvars; ++v) {
    ub[static_cast<std::size_t>(v)] = rng.uniform(1.0, 10.0);
    m.add_var(0.0, ub[static_cast<std::size_t>(v)], rng.uniform(-5.0, 5.0));
  }
  // Constraints of form sum a_i x_i <= b with a_i >= 0 and b > 0: the
  // origin is always feasible, so the LP is feasible and bounded.
  std::vector<std::vector<double>> rows;
  for (int c = 0; c < ncons; ++c) {
    LinearExpr e;
    std::vector<double> row(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v) {
      row[static_cast<std::size_t>(v)] = rng.uniform(0.0, 3.0);
      e.add(v, row[static_cast<std::size_t>(v)]);
    }
    const double b = rng.uniform(1.0, 12.0);
    row.push_back(b);
    rows.push_back(row);
    m.add_constraint(std::move(e), Sense::kLe, b);
  }

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(s.x, 1e-5));

  // No random feasible point may beat the reported optimum (minimize).
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v)
      p[static_cast<std::size_t>(v)] =
          rng.uniform(0.0, ub[static_cast<std::size_t>(v)]);
    if (!m.is_feasible(p, 1e-9)) continue;
    EXPECT_GE(m.objective_value(p), s.objective - 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// MILP
// ---------------------------------------------------------------------

TEST(MilpTest, PureLpPassesThrough) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, 4, 1.0);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(MilpTest, SimpleIntegerRounding) {
  // max x s.t. 2x <= 7, x integer => x = 3 (LP gives 3.5).
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_int_var(0, 10, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kLe, 7);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-6);
}

TEST(MilpTest, KnapsackAgainstBruteForce) {
  // 0/1 knapsack: values {6,10,12}, weights {1,2,3}, cap 5 => take 2+3 = 22.
  Model m;
  m.set_direction(Direction::kMaximize);
  const double values[] = {6, 10, 12};
  const double weights[] = {1, 2, 3};
  LinearExpr cap;
  for (int i = 0; i < 3; ++i) {
    const VarId v = m.add_binary_var(values[i]);
    cap.add(v, weights[i]);
  }
  m.add_constraint(std::move(cap), Sense::kLe, 5);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 22.0, 1e-6);
  EXPECT_NEAR(s.x[0], 0.0, 1e-6);
}

TEST(MilpTest, InfeasibleInteger) {
  // 2x = 3 with x integer in [0, 5]: LP feasible, MILP infeasible.
  Model m;
  const VarId x = m.add_int_var(0, 5, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kEq, 3);
  EXPECT_EQ(MilpSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // max x + y, x integer <= 2.5-ish via 2x <= 5, y continuous <= 1.3.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_int_var(0, 10, 1.0);
  const VarId y = m.add_var(0, 1.3, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kLe, 5);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 1.3, 1e-6);
  (void)x;
  (void)y;
}

class RandomKnapsackTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomKnapsackTest, MatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<double> value(static_cast<std::size_t>(n)),
      weight(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(1.0, 20.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(1.0, 10.0);
  }
  const double cap = rng.uniform(5.0, 25.0);

  Model m;
  m.set_direction(Direction::kMaximize);
  LinearExpr caprow;
  for (int i = 0; i < n; ++i) {
    const VarId v = m.add_binary_var(value[static_cast<std::size_t>(i)]);
    caprow.add(v, weight[static_cast<std::size_t>(i)]);
  }
  m.add_constraint(std::move(caprow), Sense::kLe, cap);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Exhaustive reference.
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0, w = 0;
    for (int i = 0; i < n; ++i)
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    if (w <= cap) best = std::max(best, v);
  }
  EXPECT_NEAR(s.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnapsackTest, ::testing::Range(0, 15));

TEST(MilpTest, RoundToIntegersRepairsAndChecks) {
  Model m;
  m.add_int_var(0, 5, 1.0);
  m.add_var(0, 5, 1.0);
  std::vector<double> x{2.4, 1.7};
  EXPECT_TRUE(round_to_integers(m, x));
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.7);  // continuous untouched
}

TEST(MilpTest, RoundToIntegersDetectsInfeasibleRounding) {
  Model m;
  const VarId x = m.add_int_var(0, 5, 1.0);
  // x >= 2.4: the fractional solution 2.4 is feasible but rounds to 2.0,
  // which violates the constraint — rounding must report failure.
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, 2.4);
  std::vector<double> sol{2.4};
  EXPECT_FALSE(round_to_integers(m, sol));
}

TEST(StatusTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNodeLimit), "node-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNoSolution), "no-solution");
}

}  // namespace
}  // namespace dsp::lp
