// Tests for the LP/MILP substrate: simplex on known instances, property
// checks against brute force, branch & bound on integer programs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/ilp_model.h"
#include "lp/milp.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace dsp::lp {
namespace {

// ---------------------------------------------------------------------
// Model basics
// ---------------------------------------------------------------------

TEST(ModelTest, ObjectiveValue) {
  Model m;
  const VarId x = m.add_var(0, 10, 2.0);
  const VarId y = m.add_var(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
  (void)x;
  (void)y;
}

TEST(ModelTest, FeasibilityCheck) {
  Model m;
  m.add_var(0, 5, 1.0);
  LinearExpr e;
  e.add(0, 1.0);
  m.add_constraint(std::move(e), Sense::kLe, 3.0);
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_FALSE(m.is_feasible({4.0}));   // violates constraint
  EXPECT_FALSE(m.is_feasible({-1.0}));  // violates lower bound
}

TEST(ModelTest, IntegralityInFeasibility) {
  Model m;
  m.add_int_var(0, 5, 1.0);
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_FALSE(m.is_feasible({2.5}));
}

TEST(ModelTest, HasIntegers) {
  Model m;
  m.add_var(0, 1, 1.0);
  EXPECT_FALSE(m.has_integers());
  m.add_binary_var(1.0);
  EXPECT_TRUE(m.has_integers());
}

// ---------------------------------------------------------------------
// Simplex: known instances
// ---------------------------------------------------------------------

TEST(SimplexTest, SimpleMaximize) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  => (4,0), obj 12.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var(0, kInf, 3.0);
  const VarId y = m.add_var(0, kInf, 2.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kLe, 4);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 6);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.x[0], 4.0, 1e-6);
  EXPECT_NEAR(s.x[1], 0.0, 1e-6);
}

TEST(SimplexTest, SimpleMinimizeWithGe) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1 => x=9? obj: prefer x
  // (cheaper): x + y = 10 with max x: y = 1, x = 9 -> obj 21.
  Model m;
  const VarId x = m.add_var(2, kInf, 2.0);
  const VarId y = m.add_var(1, kInf, 3.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kGe, 10);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 21.0, 1e-6);
  EXPECT_NEAR(s.x[0], 9.0, 1e-6);
  EXPECT_NEAR(s.x[1], 1.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x,y >= 0 => y=2, x=0, obj 2.
  Model m;
  const VarId x = m.add_var(0, kInf, 1.0);
  const VarId y = m.add_var(0, kInf, 1.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 2), Sense::kEq, 4);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 2.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var(0, 1, 1.0);
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, 5);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleBoundCross) {
  Model m;
  m.add_var(3, 1, 1.0);  // lower > upper
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, kInf, 1.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsUpperBounds) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, 7, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, 1e-9);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -5 handled via free split: x in (-inf, inf), x+3 >= 0.
  Model m;
  const VarId x = m.add_var(-kInf, kInf, 1.0);
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, -5);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-6);
}

TEST(SimplexTest, NegativeLowerBound) {
  Model m;
  const VarId x = m.add_var(-10, 10, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -10.0, 1e-6);
  (void)x;
}

TEST(SimplexTest, DegenerateTerminates) {
  // Classic degenerate LP; Bland's rule must terminate.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x1 = m.add_var(0, kInf, 10.0);
  const VarId x2 = m.add_var(0, kInf, -57.0);
  const VarId x3 = m.add_var(0, kInf, -9.0);
  const VarId x4 = m.add_var(0, kInf, -24.0);
  m.add_constraint(
      LinearExpr().add(x1, 0.5).add(x2, -5.5).add(x3, -2.5).add(x4, 9), Sense::kLe,
      0);
  m.add_constraint(
      LinearExpr().add(x1, 0.5).add(x2, -1.5).add(x3, -0.5).add(x4, 1), Sense::kLe,
      0);
  m.add_constraint(LinearExpr().add(x1, 1.0), Sense::kLe, 1);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SimplexTest, MultipleConstraintsVertex) {
  // min -x - y s.t. 2x + y <= 10, x + 3y <= 15 => vertex (3, 4), obj -7.
  Model m;
  const VarId x = m.add_var(0, kInf, -1.0);
  const VarId y = m.add_var(0, kInf, -1.0);
  m.add_constraint(LinearExpr().add(x, 2).add(y, 1), Sense::kLe, 10);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 15);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-6);
  EXPECT_NEAR(s.x[1], 4.0, 1e-6);
}

// ---------------------------------------------------------------------
// Simplex property tests: random LPs vs random feasible points
// ---------------------------------------------------------------------

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, SolutionFeasibleAndNotBeatenByRandomPoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int nvars = static_cast<int>(rng.uniform_int(1, 5));
  const int ncons = static_cast<int>(rng.uniform_int(1, 6));

  Model m;
  std::vector<double> ub(static_cast<std::size_t>(nvars));
  for (int v = 0; v < nvars; ++v) {
    ub[static_cast<std::size_t>(v)] = rng.uniform(1.0, 10.0);
    m.add_var(0.0, ub[static_cast<std::size_t>(v)], rng.uniform(-5.0, 5.0));
  }
  // Constraints of form sum a_i x_i <= b with a_i >= 0 and b > 0: the
  // origin is always feasible, so the LP is feasible and bounded.
  std::vector<std::vector<double>> rows;
  for (int c = 0; c < ncons; ++c) {
    LinearExpr e;
    std::vector<double> row(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v) {
      row[static_cast<std::size_t>(v)] = rng.uniform(0.0, 3.0);
      e.add(v, row[static_cast<std::size_t>(v)]);
    }
    const double b = rng.uniform(1.0, 12.0);
    row.push_back(b);
    rows.push_back(row);
    m.add_constraint(std::move(e), Sense::kLe, b);
  }

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(s.x, 1e-5));

  // No random feasible point may beat the reported optimum (minimize).
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v)
      p[static_cast<std::size_t>(v)] =
          rng.uniform(0.0, ub[static_cast<std::size_t>(v)]);
    if (!m.is_feasible(p, 1e-9)) continue;
    EXPECT_GE(m.objective_value(p), s.objective - 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// MILP
// ---------------------------------------------------------------------

TEST(MilpTest, PureLpPassesThrough) {
  Model m;
  m.set_direction(Direction::kMaximize);
  m.add_var(0, 4, 1.0);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(MilpTest, SimpleIntegerRounding) {
  // max x s.t. 2x <= 7, x integer => x = 3 (LP gives 3.5).
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_int_var(0, 10, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kLe, 7);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-6);
}

TEST(MilpTest, KnapsackAgainstBruteForce) {
  // 0/1 knapsack: values {6,10,12}, weights {1,2,3}, cap 5 => take 2+3 = 22.
  Model m;
  m.set_direction(Direction::kMaximize);
  const double values[] = {6, 10, 12};
  const double weights[] = {1, 2, 3};
  LinearExpr cap;
  for (int i = 0; i < 3; ++i) {
    const VarId v = m.add_binary_var(values[i]);
    cap.add(v, weights[i]);
  }
  m.add_constraint(std::move(cap), Sense::kLe, 5);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 22.0, 1e-6);
  EXPECT_NEAR(s.x[0], 0.0, 1e-6);
}

TEST(MilpTest, InfeasibleInteger) {
  // 2x = 3 with x integer in [0, 5]: LP feasible, MILP infeasible.
  Model m;
  const VarId x = m.add_int_var(0, 5, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kEq, 3);
  EXPECT_EQ(MilpSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // max x + y, x integer <= 2.5-ish via 2x <= 5, y continuous <= 1.3.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_int_var(0, 10, 1.0);
  const VarId y = m.add_var(0, 1.3, 1.0);
  m.add_constraint(LinearExpr().add(x, 2), Sense::kLe, 5);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 1.3, 1e-6);
  (void)x;
  (void)y;
}

class RandomKnapsackTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomKnapsackTest, MatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<double> value(static_cast<std::size_t>(n)),
      weight(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(1.0, 20.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(1.0, 10.0);
  }
  const double cap = rng.uniform(5.0, 25.0);

  Model m;
  m.set_direction(Direction::kMaximize);
  LinearExpr caprow;
  for (int i = 0; i < n; ++i) {
    const VarId v = m.add_binary_var(value[static_cast<std::size_t>(i)]);
    caprow.add(v, weight[static_cast<std::size_t>(i)]);
  }
  m.add_constraint(std::move(caprow), Sense::kLe, cap);
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Exhaustive reference.
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0, w = 0;
    for (int i = 0; i < n; ++i)
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    if (w <= cap) best = std::max(best, v);
  }
  EXPECT_NEAR(s.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnapsackTest, ::testing::Range(0, 15));

TEST(MilpTest, RoundToIntegersRepairsAndChecks) {
  Model m;
  m.add_int_var(0, 5, 1.0);
  m.add_var(0, 5, 1.0);
  std::vector<double> x{2.4, 1.7};
  EXPECT_TRUE(round_to_integers(m, x));
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.7);  // continuous untouched
}

TEST(MilpTest, RoundToIntegersDetectsInfeasibleRounding) {
  Model m;
  const VarId x = m.add_int_var(0, 5, 1.0);
  // x >= 2.4: the fractional solution 2.4 is feasible but rounds to 2.0,
  // which violates the constraint — rounding must report failure.
  m.add_constraint(LinearExpr().add(x, 1), Sense::kGe, 2.4);
  std::vector<double> sol{2.4};
  EXPECT_FALSE(round_to_integers(m, sol));
}

// ---------------------------------------------------------------------
// Warm start: basis round-trip, dual repair, Bland fallback
// ---------------------------------------------------------------------

TEST(WarmStartTest, BasisRoundTripReusesOptimalBasis) {
  // Re-solving the same model from its own optimal basis must accept the
  // warm basis and land on the same optimum without a Phase I.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var(0, kInf, 3.0);
  const VarId y = m.add_var(0, kInf, 2.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kLe, 4);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 6);

  SimplexSolver solver;
  Basis basis;
  const Solution cold = solver.solve(m, &basis);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_FALSE(basis.empty());
  EXPECT_FALSE(solver.last_stats().warm_used);

  const Solution warm = solver.solve(m, &basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(solver.last_stats().warm_used);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // The optimal basis is already optimal: no pivots needed.
  EXPECT_EQ(solver.last_stats().iterations, 0);
}

TEST(WarmStartTest, DualRepairAfterBoundTightening) {
  // Branch-and-bound access pattern: tighten one variable bound past its
  // basic value and re-solve warm — the dual simplex must repair the
  // single violated row instead of cold-starting.
  Model m;
  m.set_direction(Direction::kMaximize);
  const VarId x = m.add_var(0, kInf, 3.0);
  const VarId y = m.add_var(0, kInf, 2.0);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 1), Sense::kLe, 4);
  m.add_constraint(LinearExpr().add(x, 1).add(y, 3), Sense::kLe, 6);

  BoundedSimplex bs(m, {});
  Basis basis;
  const Solution cold = bs.solve(nullptr, &basis);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_NEAR(cold.x[0], 4.0, 1e-6);  // x basic at 4

  bs.set_var_bounds(x, 0.0, 2.5);  // cut below the optimal vertex
  const Solution warm = bs.solve(&basis, nullptr);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(bs.stats().warm_used);
  EXPECT_GT(bs.stats().dual_iterations, 0);
  EXPECT_NEAR(warm.x[0], 2.5, 1e-6);

  // Reference: cold solve of the tightened model agrees.
  BoundedSimplex ref(m, {});
  ref.set_var_bounds(x, 0.0, 2.5);
  const Solution check = ref.solve(nullptr, nullptr);
  ASSERT_EQ(check.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, check.objective, 1e-7);
  (void)y;
}

TEST(WarmStartTest, DegenerateDualExercisesBlandFallback) {
  // Zero objective => every dual pivot is degenerate (|z_enter| = 0). A
  // warm re-solve violating 32 rows at once must push the degenerate
  // streak past the Bland trigger and still terminate at an optimum.
  constexpr int kRows = 32;
  Model m;
  std::vector<VarId> xs, us;
  for (int i = 0; i < kRows; ++i) {
    xs.push_back(m.add_var(0.0, 1.0, 0.0));
    us.push_back(m.add_var(0.0, 1.0, 0.0));
  }
  for (int i = 0; i < kRows; ++i)
    m.add_constraint(LinearExpr().add(xs[static_cast<std::size_t>(i)], 1.0)
                         .add(us[static_cast<std::size_t>(i)], -1.0),
                     Sense::kLe, 0.0);

  BoundedSimplex bs(m, {});
  Basis basis;
  ASSERT_EQ(bs.solve(nullptr, &basis).status, SolveStatus::kOptimal);

  // Fix every x to 1: all rows become x_i - u_i = 1 - 0 > 0, violated.
  for (int i = 0; i < kRows; ++i)
    bs.set_var_bounds(xs[static_cast<std::size_t>(i)], 1.0, 1.0);
  const Solution warm = bs.solve(&basis, nullptr);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(bs.stats().warm_used);
  EXPECT_GE(bs.stats().dual_iterations, kRows);
  EXPECT_GT(bs.stats().bland_pivots, 0);
  EXPECT_TRUE(m.is_feasible(warm.x, 1e-6));
  for (int i = 0; i < kRows; ++i)
    EXPECT_NEAR(warm.x[static_cast<std::size_t>(2 * i + 1)], 1.0, 1e-6);
}

TEST(WarmStartTest, StaleBasisShapeFallsBackCold) {
  // A basis exported from a differently shaped model must be rejected
  // (cold fallback), not crash or corrupt the solve.
  Model small;
  small.add_var(0, 5, 1.0);
  small.add_constraint(LinearExpr().add(0, 1.0), Sense::kLe, 3.0);
  SimplexSolver solver;
  Basis basis;
  ASSERT_EQ(solver.solve(small, &basis).status, SolveStatus::kOptimal);

  Model big;
  big.add_var(0, 5, 1.0);
  big.add_var(0, 5, 2.0);
  big.add_constraint(LinearExpr().add(0, 1.0).add(1, 1.0), Sense::kLe, 4.0);
  big.add_constraint(LinearExpr().add(0, 1.0), Sense::kGe, 1.0);
  Basis stale = basis;
  const Solution s = solver.solve(big, &stale);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(solver.last_stats().warm_used);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

// ---------------------------------------------------------------------
// MILP warm-vs-cold equivalence and parallel-wave determinism
// ---------------------------------------------------------------------

namespace {

/// Small ILP scheduling fixtures spanning the shapes the exact scheduler
/// produces: independent tasks, a chain, and a diamond.
std::vector<IlpProblem> ilp_fixtures() {
  std::vector<IlpProblem> out;
  {
    IlpProblem p;
    p.machine_rates = {1.0, 1.0};
    p.tasks.resize(3);
    p.tasks[0].size_mi = 1.0;
    p.tasks[1].size_mi = 2.0;
    p.tasks[2].size_mi = 3.0;
    out.push_back(std::move(p));
  }
  {
    IlpProblem p;
    p.machine_rates = {1.0, 2.0};
    p.tasks.resize(3);
    p.tasks[0].size_mi = 2.0;
    p.tasks[1].size_mi = 2.0;
    p.tasks[1].parents = {0};
    p.tasks[2].size_mi = 2.0;
    p.tasks[2].parents = {1};
    out.push_back(std::move(p));
  }
  {
    IlpProblem p;
    p.machine_rates = {1.0, 1.0};
    p.tasks.resize(4);
    p.tasks[0].size_mi = 1.0;
    p.tasks[1].size_mi = 2.0;
    p.tasks[1].parents = {0};
    p.tasks[2].size_mi = 2.0;
    p.tasks[2].parents = {0};
    p.tasks[3].size_mi = 1.0;
    p.tasks[3].parents = {1, 2};
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

TEST(MilpWarmStartTest, WarmMatchesColdOnIlpFixtures) {
  for (const IlpProblem& p : ilp_fixtures()) {
    const Model model = build_ilp_model(p, /*enforce_deadlines=*/true);

    MilpSolver::Options cold_opts;
    cold_opts.warm_start = false;
    cold_opts.parallel_nodes = 1;
    MilpSolver cold(cold_opts);
    const Solution c = cold.solve(model);

    MilpSolver::Options warm_opts;
    warm_opts.warm_start = true;
    MilpSolver warm(warm_opts);
    const Solution w = warm.solve(model);

    ASSERT_EQ(w.status, c.status);
    if (c.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(w.objective, c.objective, 1e-6);
      EXPECT_TRUE(model.is_feasible(w.x, 1e-4));
      // Child nodes re-solve from the parent basis; an integral root
      // never branches, so only expect hits when the search did.
      if (warm.last_nodes() > 1) {
        EXPECT_GT(warm.last_warm_hits(), 0);
      }
    }
  }
}

TEST(MilpWarmStartTest, WarmMatchesColdOnRandomKnapsacks) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 389 + 7);
    const int n = static_cast<int>(rng.uniform_int(3, 10));
    Model m;
    m.set_direction(Direction::kMaximize);
    LinearExpr caprow;
    for (int i = 0; i < n; ++i)
      caprow.add(m.add_binary_var(rng.uniform(1.0, 20.0)),
                 rng.uniform(1.0, 10.0));
    m.add_constraint(std::move(caprow), Sense::kLe, rng.uniform(5.0, 25.0));

    MilpSolver::Options cold_opts;
    cold_opts.warm_start = false;
    MilpSolver cold(cold_opts);
    MilpSolver warm;  // defaults: warm_start on
    const Solution c = cold.solve(m);
    const Solution w = warm.solve(m);
    ASSERT_EQ(w.status, c.status) << "seed " << seed;
    EXPECT_NEAR(w.objective, c.objective, 1e-6) << "seed " << seed;
  }
}

TEST(MilpWarmStartTest, PersistentSolverWarmStartsAcrossPeriods) {
  // Cross-period pattern: same model shape, shifted data. The second
  // solve's root must warm-start from the first solve's root basis.
  MilpSolver solver;
  for (int period = 0; period < 3; ++period) {
    IlpProblem p;
    p.machine_rates = {1.0, 1.0};
    p.tasks.resize(3);
    for (int t = 0; t < 3; ++t)
      p.tasks[static_cast<std::size_t>(t)].size_mi =
          1.0 + t + 0.25 * period;
    const Model model = build_ilp_model(p, true);
    const Solution s = solver.solve(model);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "period " << period;
    if (period > 0) {
      EXPECT_GT(solver.last_warm_hits(), 0) << "period " << period;
    }
  }
}

TEST(MilpParallelTest, WaveSolutionsBitIdenticalAcrossThreadCounts) {
  for (const IlpProblem& p : ilp_fixtures()) {
    const Model model = build_ilp_model(p, true);
    std::vector<Solution> sols;
    std::vector<int> nodes;
    for (int threads : {1, 2, 4}) {
      MilpSolver::Options o;
      o.threads = threads;  // parallel_nodes stays at its default (8)
      MilpSolver s(o);
      sols.push_back(s.solve(model));
      nodes.push_back(s.last_nodes());
    }
    for (std::size_t k = 1; k < sols.size(); ++k) {
      ASSERT_EQ(sols[k].status, sols[0].status);
      EXPECT_EQ(nodes[k], nodes[0]);
      // Bit-identical, not approximately equal.
      ASSERT_EQ(sols[k].x.size(), sols[0].x.size());
      for (std::size_t j = 0; j < sols[0].x.size(); ++j)
        EXPECT_EQ(sols[k].x[j], sols[0].x[j]) << "var " << j;
      EXPECT_EQ(sols[k].objective, sols[0].objective);
    }
  }
}

TEST(StatusTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNodeLimit), "node-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNoSolution), "no-solution");
}

}  // namespace
}  // namespace dsp::lp
