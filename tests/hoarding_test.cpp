// Tests for the slot-hoarding model: dependency-blind executors launch
// tasks whose inputs are missing; those tasks hold slots without progress
// until activated by their precedents or evicted by the hoard timeout.
#include <gtest/gtest.h>

#include "baselines/tetris.h"
#include "sim/engine.h"
#include "test_util.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_independent_job;

ClusterSpec one_node(int slots) {
  return ClusterSpec::uniform(1, 1800.0, 2.0, slots);
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  p.hoard_timeout = 5 * kSecond;
  return p;
}

/// A scheduler that dispatches strictly in queue order, launching unready
/// tasks (slot hoarding), like a dependency-blind executor would.
class HoardingScheduler : public testing::RoundRobinScheduler {
 public:
  const char* name() const override { return "Hoarder"; }
  bool hoards_slots() const override { return true; }
  Gid select_next(int node, Engine& engine,
                  const std::vector<std::uint8_t>& excluded) override {
    for (Gid g : engine.waiting(node)) {
      if (excluded[g]) continue;
      if (engine.launch_blocked(g)) continue;
      if (!engine.available(node).fits(engine.task_info(g).demand)) continue;
      return g;
    }
    return kInvalidGid;
  }
  std::vector<TaskPlacement> schedule(const std::vector<JobId>& pending,
                                      Engine& engine) override {
    // Queue children *before* parents to force hoarding.
    std::vector<TaskPlacement> out;
    SimTime seq = 0;
    for (JobId j : pending) {
      const auto topo = engine.job(j).graph().topo_order();
      for (auto it = topo.rbegin(); it != topo.rend(); ++it)
        out.push_back(TaskPlacement{engine.gid(j, *it), 0, engine.now() + seq++});
    }
    return out;
  }
};

TEST(HoardingTest, HoardedTaskActivatesWhenParentFinishes) {
  // 2-task chain, 2 slots: the child is dispatched first and hoards one
  // slot; the parent runs in the other; when the parent finishes the child
  // activates in place. Makespan = 2 s (no eviction needed).
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1000.0));
  HoardingScheduler sched;
  Engine engine(one_node(2), std::move(jobs), sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 2u);
  EXPECT_EQ(m.disorders, 1u);  // the child's blind launch
  EXPECT_EQ(m.makespan, 2 * kSecond);
}

TEST(HoardingTest, HoardingWastesSlotTime) {
  // 2-task chain + 2 independent tasks, 2 slots, child queued first.
  // The hoarding child blocks a slot that an independent task could have
  // used; a dependency-aware run packs tighter.
  auto build = [] {
    JobSet jobs;
    Job job(0, 4);
    for (TaskIndex t = 0; t < 4; ++t) {
      job.task(t).size_mi = 2000.0;
      job.task(t).demand = Resources{1.0, 0.4, 0.02, 0.02};
    }
    job.add_dependency(0, 1);
    EXPECT_TRUE(job.finalize(1000.0));
    jobs.push_back(std::move(job));
    return jobs;
  };
  HoardingScheduler hoarder;
  Engine blind(one_node(2), build(), hoarder, nullptr, fast_params());
  const RunMetrics blind_m = blind.run();

  testing::RoundRobinScheduler aware;
  Engine clean(one_node(2), build(), aware, nullptr, fast_params());
  const RunMetrics clean_m = clean.run();

  EXPECT_EQ(blind_m.tasks_finished, 4u);
  EXPECT_GT(blind_m.makespan, clean_m.makespan);
  EXPECT_LT(blind_m.slot_utilization, clean_m.slot_utilization + 1e-9);
}

TEST(HoardingTest, TimeoutEvictsHoarder) {
  // 1 slot: the child hoards the only slot, so its parent can never run;
  // only the hoard timeout (5 s) breaks the deadlock.
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1000.0));
  HoardingScheduler sched;
  Engine engine(one_node(1), std::move(jobs), sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 2u);
  // Timeline: child hoards [0, 5 s), evicted; parent runs [5, 6); child
  // (now ready) runs [6, 7).
  EXPECT_EQ(m.makespan, 7 * kSecond);
  EXPECT_GE(m.disorders, 1u);
}

TEST(HoardingTest, EvictedHoarderIsBlockedFromRelaunch) {
  // After eviction the task must not immediately re-hoard the freed slot
  // (launch_blocked); the parent gets the slot instead. Verified by the
  // timeline in TimeoutEvictsHoarder; here check the flag directly.
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 20000.0));
  HoardingScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      // After the timeout fires (5 s), the child should be waiting and
      // blocked while its parent occupies the slot.
      if (engine.now() > 6 * kSecond && engine.now() < 7 * kSecond) {
        const Gid child = engine.gid(0, 1);
        if (engine.state(child) == TaskState::kWaiting) {
          observed_blocked = observed_blocked || engine.launch_blocked(child);
          if (!engine.running(0).empty())
            parent_running =
                parent_running ||
                engine.running(0).front() == engine.gid(0, 0);
        }
      }
    }
    bool observed_blocked = false;
    bool parent_running = false;
  } probe;
  Engine engine(one_node(1), std::move(jobs), sched, &probe, fast_params());
  engine.run();
  EXPECT_TRUE(probe.observed_blocked);
  EXPECT_TRUE(probe.parent_running);
}

TEST(HoardingTest, TetrisBlindVariantHoards) {
  EXPECT_TRUE(
      TetrisScheduler(TetrisScheduler::Dependency::kNone).hoards_slots());
  EXPECT_FALSE(
      TetrisScheduler(TetrisScheduler::Dependency::kSimple).hoards_slots());
}

TEST(HoardingTest, HoardingStateVisibleThroughReadApi) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 20000.0));
  HoardingScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (engine.now() < 3 * kSecond) {
        const Gid child = engine.gid(0, 1);
        saw_hoarding = saw_hoarding ||
                       engine.state(child) == TaskState::kHoarding;
      }
    }
    bool saw_hoarding = false;
  } probe;
  Engine engine(one_node(1), std::move(jobs), sched, &probe, fast_params());
  engine.run();
  EXPECT_TRUE(probe.saw_hoarding);
  EXPECT_STREQ(to_string(TaskState::kHoarding), "hoarding");
}

}  // namespace
}  // namespace dsp
