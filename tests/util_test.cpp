// Unit tests for dsp_util: rng, stats, time, table, csv, env, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/time.h"

namespace dsp {
namespace {

// ---------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------

TEST(TimeTest, FromSecondsRoundsToMicroseconds) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.5), 500 * kMillisecond);
  EXPECT_EQ(from_seconds(1e-6), 1);
  EXPECT_EQ(from_seconds(0.0), 0);
  EXPECT_EQ(from_seconds(-1.0), -kSecond);
}

TEST(TimeTest, ToSecondsInverts) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

TEST(TimeTest, FromMinutes) { EXPECT_EQ(from_minutes(2.0), 2 * kMinute); }

TEST(TimeTest, FormatRanges) {
  EXPECT_EQ(format_time(kNoTime), "--");
  EXPECT_EQ(format_time(90 * kMinute), "1h30m");
  EXPECT_EQ(format_time(90 * kSecond), "1m30s");
  EXPECT_EQ(format_time(from_seconds(2.5)), "2.5s");
  EXPECT_EQ(format_time(500), "0.5ms");
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(19);
  std::vector<double> v;
  for (int i = 0; i < 40000; ++i) v.push_back(rng.lognormal(2.0, 0.5));
  EXPECT_NEAR(median_of(v), std::exp(2.0), 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.bounded_pareto(1.1, 1.0, 100.0);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(37);
  std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  for (int i = 0; i < 40000; ++i)
    if (rng.weighted_index(w) == 1) ++count1;
  EXPECT_NEAR(static_cast<double>(count1) / 40000.0, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, RunningStatEmpty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  Rng rng(43);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StatsTest, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median_of(v), 2.5);
}

TEST(StatsTest, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);
}

TEST(StatsTest, MeanOf) {
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(StatsTest, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
  EXPECT_EQ(h.count_in_bin(2), 0u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_FALSE(h.render().empty());
}

// ---------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, RendersCsv) {
  Table t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "x,y\n1,2\n");
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_count(42), "42");
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

TEST(CsvTest, ParsesPlainFields) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvTest, ParsesQuotedFieldsWithCommasAndQuotes) {
  const auto f = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\",c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
}

TEST(CsvTest, EmptyFields) {
  const auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(CsvTest, EscapeRoundTrip) {
  for (const std::string s : {"plain", "with,comma", "with\"quote", "a\nb"}) {
    const std::string line = csv_escape(s);
    const auto parsed = parse_csv_line(line);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0], s);
  }
}

TEST(CsvTest, ReaderSkipsBlanksAndComments) {
  std::istringstream in("a,b\n\n# comment\nc,d\n");
  CsvReader reader(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(reader.next(fields));
}

TEST(CsvTest, WriterQuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write({"a", "b,c"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n");
}

// ---------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------

TEST(EnvTest, FallbackWhenUnset) {
  ::unsetenv("DSP_TEST_ENV_X");
  EXPECT_DOUBLE_EQ(env_double("DSP_TEST_ENV_X", 1.5), 1.5);
  EXPECT_EQ(env_int("DSP_TEST_ENV_X", 7), 7);
  EXPECT_EQ(env_string("DSP_TEST_ENV_X", "d"), "d");
}

TEST(EnvTest, ParsesSetValues) {
  ::setenv("DSP_TEST_ENV_Y", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("DSP_TEST_ENV_Y", 0.0), 2.5);
  ::setenv("DSP_TEST_ENV_Y", "41", 1);
  EXPECT_EQ(env_int("DSP_TEST_ENV_Y", 0), 41);
  EXPECT_EQ(env_string("DSP_TEST_ENV_Y", ""), "41");
  ::unsetenv("DSP_TEST_ENV_Y");
}

TEST(EnvTest, MalformedFallsBack) {
  ::setenv("DSP_TEST_ENV_Z", "abc", 1);
  EXPECT_DOUBLE_EQ(env_double("DSP_TEST_ENV_Z", 9.0), 9.0);
  EXPECT_EQ(env_int("DSP_TEST_ENV_Z", 9), 9);
  ::unsetenv("DSP_TEST_ENV_Z");
}

TEST(EnvTest, IntMinClampsAndFallsBack) {
  // Clamping and malformed values warn; keep the test output quiet.
  const LogLevel saved = log_detail::threshold();
  set_log_level(LogLevel::kOff);

  // Unset: silent fallback (even below the floor — the caller chose it).
  ::unsetenv("DSP_TEST_ENV_MIN");
  EXPECT_EQ(env_int_min("DSP_TEST_ENV_MIN", 4, 1), 4);

  // In range: parsed value wins.
  ::setenv("DSP_TEST_ENV_MIN", "4", 1);
  EXPECT_EQ(env_int_min("DSP_TEST_ENV_MIN", 1, 1), 4);

  // Zero and negative clamp to the floor (DSP_THREADS=0 must not mean
  // "no workers"); malformed text falls back.
  ::setenv("DSP_TEST_ENV_MIN", "0", 1);
  EXPECT_EQ(env_int_min("DSP_TEST_ENV_MIN", 8, 1), 1);
  ::setenv("DSP_TEST_ENV_MIN", "-3", 1);
  EXPECT_EQ(env_int_min("DSP_TEST_ENV_MIN", 8, 1), 1);
  ::setenv("DSP_TEST_ENV_MIN", "abc", 1);
  EXPECT_EQ(env_int_min("DSP_TEST_ENV_MIN", 8, 1), 8);
  ::unsetenv("DSP_TEST_ENV_MIN");
  set_log_level(saved);
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(LogTest, FormatLineHasTagTimestampAndNewline) {
  EXPECT_EQ(log_detail::format_line(LogLevel::kWarn, 1.5, "disk full"),
            "[dsp WARN +1.500s] disk full\n");
  EXPECT_EQ(log_detail::format_line(LogLevel::kDebug, 0.0, ""),
            "[dsp DEBUG +0.000s] \n");
  const std::string line =
      log_detail::format_line(LogLevel::kError, 12.3456, "x");
  // Millisecond precision on the monotonic stamp.
  EXPECT_NE(line.find("+12.346s"), std::string::npos) << line;
}

TEST(LogTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(LogTest, EnabledFollowsThreshold) {
  const LogLevel saved = log_detail::threshold();
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(saved);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&count] { count++; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, SizeReflectsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace dsp
