// Tests for failure/straggler injection: outage semantics, checkpoint
// survival, straggler slowdowns, re-placement, and invariants under
// faults.
#include <gtest/gtest.h>

#include "core/dsp_system.h"
#include "sim/engine.h"
#include "sim/failures.h"
#include "sim/invariants.h"
#include "sim/recorder.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_chain_job;
using testing::make_independent_job;
using testing::RoundRobinScheduler;

ClusterSpec nodes(std::size_t n, int slots = 1) {
  return ClusterSpec::uniform(n, 1800.0, 2.0, slots);
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

// ---------------------------------------------------------------------
// FailurePlan construction
// ---------------------------------------------------------------------

TEST(FailurePlanTest, OutageProducesFailAndRecover) {
  FailurePlan plan;
  plan.add_outage(2, 10 * kSecond, 5 * kSecond);
  const auto events = plan.sorted_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, NodeEvent::Kind::kFail);
  EXPECT_EQ(events[0].at, 10 * kSecond);
  EXPECT_EQ(events[1].kind, NodeEvent::Kind::kRecover);
  EXPECT_EQ(events[1].at, 15 * kSecond);
  EXPECT_EQ(plan.outage_count(), 1u);
}

TEST(FailurePlanTest, EventsSortedByTime) {
  FailurePlan plan;
  plan.add_outage(0, 20 * kSecond, kSecond);
  plan.add_slowdown(1, 5 * kSecond, kSecond, 0.5);
  const auto events = plan.sorted_events();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].at, events[i - 1].at);
}

TEST(FailurePlanTest, RandomOutagesWithinHorizon) {
  const auto cluster = nodes(10);
  const FailurePlan plan =
      FailurePlan::random_outages(cluster, 10 * kHour, 2.0, 10.0, 7);
  EXPECT_GT(plan.outage_count(), 0u);
  for (const auto& e : plan.sorted_events()) {
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, 10);
    if (e.kind == NodeEvent::Kind::kFail) {
      EXPECT_LT(e.at, 10 * kHour);
    }
  }
}

TEST(FailurePlanTest, RandomStragglersUseFactor) {
  const auto cluster = nodes(5);
  const FailurePlan plan = FailurePlan::random_stragglers(
      cluster, 5 * kHour, 30 * kMinute, 5 * kMinute, 0.4, 11);
  EXPECT_GT(plan.slowdown_count(), 0u);
  for (const auto& e : plan.sorted_events())
    if (e.kind == NodeEvent::Kind::kSlowdown) {
      EXPECT_DOUBLE_EQ(e.factor, 0.4);
    }
}

TEST(FailurePlanTest, KindNames) {
  EXPECT_STREQ(to_string(NodeEvent::Kind::kFail), "fail");
  EXPECT_STREQ(to_string(NodeEvent::Kind::kRecover), "recover");
  EXPECT_STREQ(to_string(NodeEvent::Kind::kSlowdown), "slowdown");
  EXPECT_STREQ(to_string(NodeEvent::Kind::kRestoreSpeed), "restore-speed");
}

// ---------------------------------------------------------------------
// Outage semantics
// ---------------------------------------------------------------------

TEST(FailureTest, OutageKillsAndResumesWithCheckpoint) {
  // One 10 s task on a 1-node cluster; the node dies at 4 s for 3 s.
  // With surviving checkpoints: 4 s progress kept, resume at 7 s with
  // recovery overhead, finish at 7 + 0.3 + 6 = 13.3 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  EngineParams params = fast_params();
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, params);
  FailurePlan plan;
  plan.add_outage(0, 4 * kSecond, 3 * kSecond);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.node_failures, 1u);
  EXPECT_EQ(m.tasks_killed_by_failure, 1u);
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.makespan,
            7 * kSecond + params.recovery + params.ctx_switch + 6 * kSecond);
  EXPECT_DOUBLE_EQ(m.work_lost_mi, 0.0);
}

TEST(FailureTest, OutageWithoutCheckpointLosesProgress) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  EngineParams params = fast_params();
  params.checkpoints_survive_failure = false;
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, params);
  FailurePlan plan;
  plan.add_outage(0, 4 * kSecond, 3 * kSecond);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  // All 4 s of progress lost: resume at 7 s, full 10 s re-run.
  EXPECT_EQ(m.makespan,
            7 * kSecond + params.recovery + params.ctx_switch + 10 * kSecond);
  EXPECT_NEAR(m.work_lost_mi, 4000.0, 1.0);
}

TEST(FailureTest, QueuedTasksMigrateToLiveNodes) {
  // Two nodes; node 0 holds both tasks of a job and dies immediately for a
  // long time. The queued task must migrate to node 1 and finish long
  // before node 0 recovers.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 2000.0));
  testing::PinnedScheduler sched(0);
  Engine engine(nodes(2, 1), std::move(jobs), sched, nullptr, fast_params());
  FailurePlan plan;
  plan.add_outage(0, 1 * kSecond, 10 * kMinute);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 2u);
  EXPECT_LT(m.makespan, kMinute);
}

TEST(FailureTest, DownNodeAcceptsNoWork) {
  // Node fails before the job is scheduled; all tasks must run elsewhere.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 1000.0, 2 * kSecond));
  RoundRobinScheduler sched;
  TimelineRecorder recorder;
  Engine engine(nodes(2, 2), std::move(jobs), sched, nullptr, fast_params());
  engine.set_observer(&recorder);
  FailurePlan plan;
  plan.add_outage(0, 0, 10 * kMinute);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 4u);
  for (const auto& iv : recorder.intervals()) EXPECT_EQ(iv.node, 1);
}

TEST(FailureTest, NodeUpQueryReflectsState) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 60000.0));
  RoundRobinScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (engine.now() > 2 * kSecond && engine.now() < 4 * kSecond)
        saw_down = saw_down || !engine.node_up(1);
      if (engine.now() > 6 * kSecond)
        saw_up_again = saw_up_again || engine.node_up(1);
    }
    bool saw_down = false;
    bool saw_up_again = false;
  } probe;
  Engine engine(nodes(2), std::move(jobs), sched, &probe, fast_params());
  FailurePlan plan;
  plan.add_outage(1, 2 * kSecond, 3 * kSecond);
  engine.set_failure_plan(plan);
  engine.run();
  EXPECT_TRUE(probe.saw_down);
  EXPECT_TRUE(probe.saw_up_again);
}

// ---------------------------------------------------------------------
// Node-event edge cases
// ---------------------------------------------------------------------

TEST(FailureTest, NodeEventAtTimeZeroAppliesBeforeFirstDispatch) {
  // A slowdown starting at t = 0 must be in force when the first task is
  // dispatched (also at t = 0, the period tick coincident with arrival):
  // 4 s at 0.5x (2000 MI) + 8000 MI at full rate = 12 s, exactly as if
  // the task had started mid-slowdown.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, fast_params());
  FailurePlan plan;
  plan.add_slowdown(0, 0, 4 * kSecond, 0.5);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.makespan, 12 * kSecond);
}

TEST(FailureTest, SimultaneousDownUpSameTimestamp) {
  // A zero-duration outage puts kFail and kRecover at the same timestamp.
  // Plan order is preserved for equal times (stable sort): the node fails
  // — killing its running task — and recovers in the same instant, so the
  // task resumes immediately with only the recovery overhead:
  // 4 s progress kept, resume at 4 s, finish at 4 + t^r + sigma + 6 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  EngineParams params = fast_params();
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, params);
  FailurePlan plan;
  plan.add_outage(0, 4 * kSecond, 0);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.node_failures, 1u);
  EXPECT_EQ(m.tasks_killed_by_failure, 1u);
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.makespan,
            4 * kSecond + params.recovery + params.ctx_switch + 6 * kSecond);
}

TEST(FailureTest, EventsTargetingAlreadyDownNodeAreNoOps) {
  // Overlapping outages on one node: the second kFail hits an already-down
  // node (no-op — no double kill, no double node_failures count) and its
  // paired kRecover at 5 s brings the node back early; the first outage's
  // recover at 12 s then hits an already-up node (no-op). Timeline:
  // fail@2 (2 s progress checkpointed), fail@4 ignored, recover@5 resumes,
  // finish at 5 + t^r + sigma + 8 s; recover@12 ignored.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  EngineParams params = fast_params();
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, params);
  FailurePlan plan;
  plan.add_outage(0, 2 * kSecond, 10 * kSecond);
  plan.add_outage(0, 4 * kSecond, 1 * kSecond);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.node_failures, 1u);
  EXPECT_EQ(m.tasks_killed_by_failure, 1u);
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.makespan,
            5 * kSecond + params.recovery + params.ctx_switch + 8 * kSecond);
}

// ---------------------------------------------------------------------
// Straggler semantics
// ---------------------------------------------------------------------

TEST(StragglerTest, SlowdownStretchesExecution) {
  // 10 s task; node runs at 0.5x during [2 s, 6 s): work done = 2 s full +
  // 4 s at half speed (= 2 s worth) + remaining 6 s at full = finish 12 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 10000.0));
  RoundRobinScheduler sched;
  Engine engine(nodes(1), std::move(jobs), sched, nullptr, fast_params());
  FailurePlan plan;
  plan.add_slowdown(0, 2 * kSecond, 4 * kSecond, 0.5);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.makespan, 12 * kSecond);
}

TEST(StragglerTest, SpeedFactorVisible) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 60000.0));
  RoundRobinScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (engine.now() > 2 * kSecond && engine.now() < 5 * kSecond)
        min_factor = std::min(min_factor, engine.node_speed_factor(0));
    }
    double min_factor = 1.0;
  } probe;
  Engine engine(nodes(1), std::move(jobs), sched, &probe, fast_params());
  FailurePlan plan;
  plan.add_slowdown(0, 2 * kSecond, 10 * kSecond, 0.25);
  engine.set_failure_plan(plan);
  engine.run();
  EXPECT_DOUBLE_EQ(probe.min_factor, 0.25);
}

// ---------------------------------------------------------------------
// System behaviour under faults
// ---------------------------------------------------------------------

TEST(FailureTest, DspSurvivesRandomOutages) {
  WorkloadConfig cfg;
  cfg.job_count = 8;
  cfg.task_scale = 0.01;
  const JobSet jobs = WorkloadGenerator(cfg, 311).generate();
  const std::size_t expected = total_tasks(jobs);

  DspScheduler sched;
  DspPreemption policy{DspParams{}};
  const ClusterSpec cluster = ClusterSpec::ec2(6);
  Engine engine(cluster, jobs, sched, &policy, fast_params());
  engine.set_failure_plan(
      FailurePlan::random_outages(cluster, 4 * kHour, 0.5, 2.0, 313));
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, expected);
  EXPECT_GT(m.node_failures, 0u);
}

TEST(FailureTest, InvariantsHoldUnderFailures) {
  // Dependency and slot invariants must survive fault injection (work
  // conservation is exempt: failures legitimately re-execute work, and
  // stragglers change effective rates).
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.01;
  const JobSet jobs = WorkloadGenerator(cfg, 331).generate();

  DspScheduler sched;
  const ClusterSpec cluster = ClusterSpec::ec2(4);
  TimelineRecorder recorder;
  Engine engine(cluster, jobs, sched, nullptr, fast_params());
  engine.set_observer(&recorder);
  FailurePlan plan = FailurePlan::random_outages(cluster, 4 * kHour, 0.3, 2.0, 337);
  plan.add_slowdown(0, 30 * kSecond, 5 * kMinute, 0.5);
  engine.set_failure_plan(plan);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, total_tasks(jobs));

  InvariantOptions options;
  options.check_work_conservation = false;
  const auto problems = check_run_invariants(recorder, jobs, cluster, options);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(StragglerTest, MitigationMigratesWorkOffSlowNodes) {
  // Node 0 degrades to 0.1x for a long stretch while node 1 stays
  // healthy. With mitigation, DSP vacates node 0 and the work finishes
  // much earlier than without.
  auto run_with = [](bool mitigate) {
    JobSet jobs;
    jobs.push_back(make_independent_job(0, 4, 30000.0));
    DspScheduler sched;
    DspParams params;
    params.straggler_mitigation = mitigate;
    DspPreemption policy(params);
    Engine engine(nodes(2, 2), std::move(jobs), sched, &policy, fast_params());
    FailurePlan plan;
    plan.add_slowdown(0, 5 * kSecond, 30 * kMinute, 0.1);
    engine.set_failure_plan(plan);
    return engine.run().makespan;
  };
  const SimTime with = run_with(true);
  const SimTime without = run_with(false);
  EXPECT_LT(with, without);
  EXPECT_LT(with, 5 * kMinute);
}

TEST(StragglerTest, EvictAndMigrateApi) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 60000.0));
  RoundRobinScheduler sched;
  class Driver : public PreemptionPolicy {
   public:
    const char* name() const override { return "Driver"; }
    void on_epoch(Engine& engine) override {
      if (done_) return;
      // Evict the task running on node 0 and migrate it to node 1.
      if (!engine.running(0).empty()) {
        const Gid g = engine.running(0).front();
        evicted = engine.evict_running(g);
        // Double-evict must fail.
        evict_again = engine.evict_running(g);
        migrated = engine.migrate_task(g, 1);
        migrate_same = engine.migrate_task(g, 1);  // already there
        done_ = true;
      }
    }
    bool evicted = false, evict_again = true;
    bool migrated = false, migrate_same = true;

   private:
    bool done_ = false;
  } driver;
  Engine engine(nodes(2, 1), std::move(jobs), sched, &driver, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_TRUE(driver.evicted);
  EXPECT_FALSE(driver.evict_again);
  EXPECT_TRUE(driver.migrated);
  EXPECT_FALSE(driver.migrate_same);
  EXPECT_EQ(m.tasks_finished, 2u);
}

TEST(FailureTest, FailuresIncreaseMakespan) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.01;
  const JobSet jobs = WorkloadGenerator(cfg, 347).generate();
  const ClusterSpec cluster = ClusterSpec::ec2(4);

  auto run_with = [&](bool inject) {
    DspScheduler sched;
    DspPreemption policy{DspParams{}};
    Engine engine(cluster, jobs, sched, &policy, fast_params());
    if (inject) {
      FailurePlan heavy;
      for (int k = 0; k < 4; ++k)
        heavy.add_outage(k, (1 + k) * kMinute, 5 * kMinute);
      engine.set_failure_plan(heavy);
    }
    return engine.run().makespan;
  };
  EXPECT_GT(run_with(true), run_with(false));
}

}  // namespace
}  // namespace dsp
