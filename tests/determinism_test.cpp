// Determinism guarantees of the incremental/parallel epoch hot path:
// priorities from the incremental compute_all (with and without a thread
// pool) must be bit-identical to a serial full recompute, and the whole
// preemption audit trail must be independent of the threads knob.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/dsp_scheduler.h"
#include "core/ilp_model.h"
#include "core/preemption.h"
#include "core/priority.h"
#include "lp/milp.h"
#include "obs/audit.h"
#include "sim/engine.h"
#include "sim/failures.h"
#include "trace/workload.h"
#include "util/thread_pool.h"

namespace dsp {
namespace {

WorkloadConfig contended_config(std::size_t job_count) {
  WorkloadConfig cfg;
  cfg.job_count = job_count;
  cfg.task_scale = 0.01;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 50.0;
  return cfg;
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

// ---------------------------------------------------------------------
// Incremental + parallel compute_all vs serial full recompute
// ---------------------------------------------------------------------

/// Each epoch, computes priorities three ways — serial full recompute
/// (invalidate() before every call), incremental, and incremental over a
/// pool — plus a same-timestamp repeat that exercises the all-clean skip
/// path, and requires exact equality across all of them.
class DualProbe : public PreemptionPolicy {
 public:
  explicit DualProbe(const DspParams& params)
      : reference_(params), incremental_(params), pooled_(params), pool_(3) {
    pooled_.set_thread_pool(&pool_);
  }
  const char* name() const override { return "DualProbe"; }

  void on_epoch(Engine& engine) override {
    reference_.invalidate();  // force the full-recompute reference path
    const auto r0 = reference_.compute_all(engine, ref_out_);
    const auto r1 = incremental_.compute_all(engine, inc_out_);
    const auto r2 = pooled_.compute_all(engine, pool_out_);
    ++epochs;
    // operator== on vector<double> is exact element equality; priorities
    // are never NaN (t_rem is clamped), so this is bit-for-bit.
    if (inc_out_ != ref_out_) ++incremental_mismatches;
    if (pool_out_ != ref_out_) ++parallel_mismatches;
    if (r1.min_p != r0.min_p || r1.max_p != r0.max_p ||
        r1.live_tasks != r0.live_tasks)
      ++range_mismatches;
    if (r2.min_p != r0.min_p || r2.max_p != r0.max_p ||
        r2.live_tasks != r0.live_tasks)
      ++range_mismatches;
    // Repeat at the same timestamp with no intervening events: every job
    // is clean, so this must take the skip path and change nothing.
    const auto r3 = incremental_.compute_all(engine, inc_out_);
    if (inc_out_ != ref_out_ || r3.live_tasks != r0.live_tasks)
      ++skip_path_mismatches;
  }

  int epochs = 0;
  int incremental_mismatches = 0;
  int parallel_mismatches = 0;
  int range_mismatches = 0;
  int skip_path_mismatches = 0;

 private:
  DependencyPriority reference_;
  DependencyPriority incremental_;
  DependencyPriority pooled_;
  ThreadPool pool_;
  std::vector<double> ref_out_;
  std::vector<double> inc_out_;
  std::vector<double> pool_out_;
};

TEST(DeterminismTest, IncrementalMatchesFullRecomputeBitwise) {
  const JobSet jobs = WorkloadGenerator(contended_config(10), 311).generate();
  DspScheduler sched;
  DspParams params;
  DualProbe probe(params);
  Engine engine(ClusterSpec::ec2(4), jobs, sched, &probe, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, total_tasks(jobs));
  ASSERT_GT(probe.epochs, 10);
  EXPECT_EQ(probe.incremental_mismatches, 0);
  EXPECT_EQ(probe.parallel_mismatches, 0);
  EXPECT_EQ(probe.range_mismatches, 0);
  EXPECT_EQ(probe.skip_path_mismatches, 0);
}

TEST(DeterminismTest, IncrementalMatchesFullRecomputeUnderNodeEvents) {
  // Failures, slowdowns and recoveries change node rates out from under
  // waiting tasks; the dirty-bit plumbing must invalidate those jobs too.
  const JobSet jobs = WorkloadGenerator(contended_config(8), 313).generate();
  DspScheduler sched;
  DspParams params;
  DualProbe probe(params);
  const ClusterSpec cluster = ClusterSpec::ec2(4);
  Engine engine(cluster, jobs, sched, &probe, fast_params());
  FailurePlan plan = FailurePlan::random_outages(cluster, 4 * kHour, 0.5, 2.0, 317);
  plan.add_slowdown(0, 10 * kSecond, 2 * kMinute, 0.5);
  engine.set_failure_plan(plan);
  engine.run();
  ASSERT_GT(probe.epochs, 10);
  EXPECT_EQ(probe.incremental_mismatches, 0);
  EXPECT_EQ(probe.parallel_mismatches, 0);
  EXPECT_EQ(probe.range_mismatches, 0);
  EXPECT_EQ(probe.skip_path_mismatches, 0);
}

// ---------------------------------------------------------------------
// Whole-run audit trail vs the threads knob
// ---------------------------------------------------------------------

struct RunResult {
  RunMetrics metrics;
  std::vector<obs::PreemptDecision> decisions;
};

RunResult run_dsp_with_threads(int threads) {
  const JobSet jobs = WorkloadGenerator(contended_config(10), 331).generate();
  DspParams params;
  params.threads = threads;
  DspScheduler sched;
  DspPreemption policy(params);
  Engine engine(ClusterSpec::ec2(4), jobs, sched, &policy, fast_params());
  obs::PreemptionAuditTrail trail;
  engine.set_audit(&trail);
  RunResult r;
  r.metrics = engine.run();
  r.decisions = trail.decisions();
  return r;
}

void expect_decisions_identical(const obs::PreemptDecision& a,
                                const obs::PreemptDecision& b,
                                std::size_t index) {
  EXPECT_EQ(a.time, b.time) << index;
  EXPECT_EQ(a.node, b.node) << index;
  EXPECT_EQ(a.candidate, b.candidate) << index;
  EXPECT_EQ(a.victim, b.victim) << index;
  EXPECT_EQ(a.candidate_priority, b.candidate_priority) << index;
  EXPECT_EQ(a.victim_priority, b.victim_priority) << index;
  EXPECT_EQ(a.normalized_gap, b.normalized_gap) << index;
  EXPECT_EQ(a.delta, b.delta) << index;
  EXPECT_EQ(a.urgent, b.urgent) << index;
  EXPECT_EQ(a.outcome, b.outcome) << index;
}

TEST(DeterminismTest, AuditTrailIdenticalAcrossThreadCounts) {
  const RunResult serial = run_dsp_with_threads(1);
  ASSERT_FALSE(serial.decisions.empty());
  for (const int threads : {2, 4}) {
    const RunResult parallel = run_dsp_with_threads(threads);
    EXPECT_EQ(parallel.metrics.makespan, serial.metrics.makespan) << threads;
    EXPECT_EQ(parallel.metrics.preemptions, serial.metrics.preemptions)
        << threads;
    EXPECT_EQ(parallel.metrics.tasks_finished, serial.metrics.tasks_finished)
        << threads;
    EXPECT_EQ(parallel.metrics.job_waiting_s, serial.metrics.job_waiting_s)
        << threads;
    ASSERT_EQ(parallel.decisions.size(), serial.decisions.size()) << threads;
    for (std::size_t i = 0; i < serial.decisions.size(); ++i)
      expect_decisions_identical(serial.decisions[i], parallel.decisions[i],
                                 i);
  }
}

// ---------------------------------------------------------------------
// Parallel branch & bound vs the threads knob
// ---------------------------------------------------------------------

/// An ILP instance whose LP relaxation is fractional, so the solver
/// actually branches and the parallel waves carry several nodes.
IlpProblem branching_ilp_instance() {
  IlpProblem p;
  p.machine_rates = {1.0, 1.4};
  p.tasks.resize(5);
  p.tasks[0].size_mi = 3.0;
  p.tasks[1].size_mi = 2.0;
  p.tasks[2].size_mi = 4.0;
  p.tasks[2].parents = {0};
  p.tasks[3].size_mi = 1.0;
  p.tasks[3].parents = {1};
  p.tasks[4].size_mi = 2.0;
  p.tasks[4].parents = {2, 3};
  return p;
}

TEST(DeterminismTest, MilpSolutionsIdenticalAcrossThreadCounts) {
  const lp::Model model =
      build_ilp_model(branching_ilp_instance(), /*enforce_deadlines=*/true);

  lp::Solution reference;
  int reference_nodes = 0;
  for (const int threads : {1, 2, 4}) {
    lp::MilpSolver::Options o;
    o.threads = threads;
    lp::MilpSolver solver(o);
    const lp::Solution s = solver.solve(model);
    ASSERT_EQ(s.status, lp::SolveStatus::kOptimal) << threads;
    if (threads == 1) {
      reference = s;
      reference_nodes = solver.last_nodes();
      ASSERT_GT(reference_nodes, 1);  // the instance must branch
      continue;
    }
    EXPECT_EQ(solver.last_nodes(), reference_nodes) << threads;
    EXPECT_EQ(s.objective, reference.objective) << threads;
    ASSERT_EQ(s.x.size(), reference.x.size()) << threads;
    for (std::size_t i = 0; i < reference.x.size(); ++i)
      EXPECT_EQ(s.x[i], reference.x[i]) << threads << " var " << i;
  }
}

TEST(DeterminismTest, MilpHonoursDspThreadsEnv) {
  // threads <= 0 resolves the worker count from DSP_THREADS; the result
  // must still be bit-identical to the explicit serial solve.
  const lp::Model model =
      build_ilp_model(branching_ilp_instance(), /*enforce_deadlines=*/true);

  lp::MilpSolver::Options serial_opts;
  serial_opts.threads = 1;
  lp::MilpSolver serial(serial_opts);
  const lp::Solution reference = serial.solve(model);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  const char* saved = std::getenv("DSP_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  ::setenv("DSP_THREADS", "3", 1);
  {
    lp::MilpSolver from_env;  // Options::threads defaults to 0
    const lp::Solution s = from_env.solve(model);
    EXPECT_EQ(s.status, lp::SolveStatus::kOptimal);
    EXPECT_EQ(s.objective, reference.objective);
    ASSERT_EQ(s.x.size(), reference.x.size());
    for (std::size_t i = 0; i < reference.x.size(); ++i)
      EXPECT_EQ(s.x[i], reference.x[i]) << "var " << i;
    EXPECT_EQ(from_env.last_nodes(), serial.last_nodes());
  }
  if (saved == nullptr)
    ::unsetenv("DSP_THREADS");
  else
    ::setenv("DSP_THREADS", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace dsp
