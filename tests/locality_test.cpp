// Tests for the data-locality extension (§VI future work): transfer
// charging, locality-aware placement and metrics.
#include <gtest/gtest.h>

#include "core/dsp_system.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_independent_job;
using testing::PinnedScheduler;
using testing::RoundRobinScheduler;

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  p.remote_read_bw_mbps = 100.0;
  return p;
}

/// One 10 s task whose 500 MB input lives on node 0.
JobSet pinned_input_job() {
  JobSet jobs;
  Job job = make_independent_job(0, 1, 10000.0);
  job.task(0).input_nodes = {0};
  job.task(0).input_mb = 500.0;
  jobs.push_back(std::move(job));
  return jobs;
}

TEST(LocalityTest, LocalLaunchPaysNoTransfer) {
  PinnedScheduler sched(0);
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 1), pinned_input_job(),
                sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.makespan, 10 * kSecond);
  EXPECT_EQ(m.locality_local, 1u);
  EXPECT_EQ(m.locality_remote, 0u);
  EXPECT_DOUBLE_EQ(m.locality_hit_rate(), 1.0);
}

TEST(LocalityTest, RemoteLaunchPaysTransfer) {
  // 500 MB at 100 MB/s = 5 s of fetch before the 10 s of work.
  PinnedScheduler sched(1);
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 1), pinned_input_job(),
                sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.makespan, 15 * kSecond);
  EXPECT_EQ(m.locality_remote, 1u);
  EXPECT_DOUBLE_EQ(m.locality_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.overhead_s, 5.0);
}

TEST(LocalityTest, TransferTimeQuery) {
  PinnedScheduler sched(0);
  Engine engine(ClusterSpec::uniform(3, 1800.0, 2.0, 1), pinned_input_job(),
                sched, nullptr, fast_params());
  EXPECT_EQ(engine.transfer_time(0, 0), 0);
  EXPECT_EQ(engine.transfer_time(0, 1), 5 * kSecond);
  EXPECT_EQ(engine.transfer_time(0, 2), 5 * kSecond);
}

TEST(LocalityTest, UnconstrainedTasksAreLocalEverywhere) {
  Task t;
  EXPECT_TRUE(t.input_local_to(0));
  EXPECT_TRUE(t.input_local_to(17));
  t.input_nodes = {2, 5};
  EXPECT_TRUE(t.input_local_to(2));
  EXPECT_TRUE(t.input_local_to(5));
  EXPECT_FALSE(t.input_local_to(3));
}

TEST(LocalityTest, DspSchedulerPrefersInputNode) {
  // Even though node 1 has a slightly smaller backlog estimate, the
  // locality-aware heuristic must land the task on node 0, avoiding the
  // large fetch.
  DspScheduler sched;
  Engine engine(ClusterSpec::uniform(3, 1800.0, 2.0, 1), pinned_input_job(),
                sched, nullptr, fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.locality_local, 1u);
  EXPECT_EQ(m.makespan, 10 * kSecond);
}

TEST(LocalityTest, LocalityAwarePlacementAvoidsFetches) {
  // Many input-pinned tasks: locality-aware DSP achieves a higher hit
  // rate and pays less transfer overhead than the blind variant.
  // (Makespan is not asserted: under contention, locality concentrates
  // load on the data nodes and can trade queueing delay for fetches.)
  auto build = [] {
    WorkloadConfig cfg;
    cfg.job_count = 6;
    cfg.task_scale = 0.01;
    cfg.locality_nodes = 4;
    cfg.locality_fraction = 1.0;
    cfg.input_mb_mu = 6.5;  // median ~665 MB: fetches hurt
    return WorkloadGenerator(cfg, 401).generate();
  };
  const ClusterSpec cluster = ClusterSpec::ec2(4);

  DspScheduler::Options aware_opts;
  aware_opts.locality_aware = true;
  DspScheduler aware(aware_opts);
  const RunMetrics aware_m =
      simulate(cluster, build(), aware, nullptr, fast_params());

  DspScheduler::Options blind_opts;
  blind_opts.locality_aware = false;
  DspScheduler blind(blind_opts);
  const RunMetrics blind_m =
      simulate(cluster, build(), blind, nullptr, fast_params());

  EXPECT_GT(aware_m.locality_hit_rate(), blind_m.locality_hit_rate());
  EXPECT_LT(aware_m.overhead_s, blind_m.overhead_s);
}

TEST(LocalityTest, GeneratorAssignsInputsToRootsOnly) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.02;
  cfg.locality_nodes = 10;
  cfg.locality_fraction = 1.0;
  cfg.locality_replicas = 3;
  const JobSet jobs = WorkloadGenerator(cfg, 409).generate();
  bool any_input = false;
  for (const auto& job : jobs) {
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      const Task& task = job.task(t);
      if (!job.graph().parents(t).empty()) {
        EXPECT_TRUE(task.input_nodes.empty());
        continue;
      }
      if (task.input_nodes.empty()) continue;
      any_input = true;
      EXPECT_EQ(task.input_nodes.size(), 3u);
      EXPECT_GT(task.input_mb, 0.0);
      for (int n : task.input_nodes) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, 10);
      }
    }
  }
  EXPECT_TRUE(any_input);
}

TEST(LocalityTest, GeneratorDisabledByDefault) {
  WorkloadConfig cfg;
  cfg.job_count = 3;
  cfg.task_scale = 0.01;
  const JobSet jobs = WorkloadGenerator(cfg, 419).generate();
  for (const auto& job : jobs)
    for (const auto& task : job.tasks()) EXPECT_TRUE(task.input_nodes.empty());
}

}  // namespace
}  // namespace dsp
