// Simulator tests: cluster profiles, execution timing, dependency
// enforcement, preemption mechanics, checkpoint semantics, metrics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/cluster.h"
#include "sim/engine.h"
#include "test_util.h"
#include "util/log.h"

namespace dsp {
namespace {

using testing::kTestRate;
using testing::make_chain_job;
using testing::make_diamond_job;
using testing::make_independent_job;
using testing::NullPreemption;
using testing::PinnedScheduler;
using testing::RoundRobinScheduler;

// A uniform test cluster whose g(k) equals kTestRate exactly:
// theta1 * cpu_mips = 0.5 * 1800 = 900; theta2 * mem * 100 = 0.5 * 2 * 100
// = 100 -> 1000 MIPS.
ClusterSpec test_cluster(std::size_t n, int slots) {
  return ClusterSpec::uniform(n, 1800.0, 2.0, slots);
}

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

// ---------------------------------------------------------------------
// ClusterSpec
// ---------------------------------------------------------------------

TEST(ClusterTest, RateFollowsEquationOne) {
  const ClusterSpec c = test_cluster(3, 2);
  EXPECT_DOUBLE_EQ(c.rate(0), 1000.0);
  EXPECT_DOUBLE_EQ(c.mean_rate(), 1000.0);
  EXPECT_DOUBLE_EQ(c.max_rate(), 1000.0);
  EXPECT_EQ(c.total_slots(), 6);
}

TEST(ClusterTest, RealClusterProfile) {
  const ClusterSpec c = ClusterSpec::real_cluster();
  EXPECT_EQ(c.size(), 50u);
  EXPECT_EQ(c.node(0).slots, 4);
  EXPECT_DOUBLE_EQ(c.node(0).mem_gb, 16.0);
  EXPECT_GT(c.rate(0), 0.0);
}

TEST(ClusterTest, Ec2Profile) {
  const ClusterSpec c = ClusterSpec::ec2();
  EXPECT_EQ(c.size(), 30u);
  EXPECT_DOUBLE_EQ(c.node(0).cpu_mips, 2660.0);
  EXPECT_DOUBLE_EQ(c.node(0).mem_gb, 4.0);
  // The paper's real cluster is faster per node and has more nodes.
  const ClusterSpec real = ClusterSpec::real_cluster();
  EXPECT_GT(real.size() * static_cast<std::size_t>(real.node(0).slots),
            c.size() * static_cast<std::size_t>(c.node(0).slots));
}

TEST(ClusterTest, ValidateAcceptsWellFormedSpecs) {
  EXPECT_TRUE(test_cluster(3, 2).validate().empty());
  EXPECT_TRUE(ClusterSpec::real_cluster().validate().empty());
  EXPECT_TRUE(ClusterSpec::ec2().validate().empty());
  // A default-constructed (empty) spec is vacuously valid: no nodes, no
  // defects. The engine separately treats an empty cluster as zero rate.
  EXPECT_TRUE(ClusterSpec().validate().empty());
}

TEST(ClusterTest, ValidationRejectsNonPositiveSlots) {
  NodeSpec bad;
  bad.capacity = Resources{2.0, 4.0, 100.0, 100.0};
  bad.slots = 0;
  try {
    ClusterSpec spec({bad});
    FAIL() << "zero-slot node must be rejected";
  } catch (const std::invalid_argument& e) {
    // The message names the node and the field so a misconfigured
    // experiment points at its own recipe, not at engine internals.
    EXPECT_NE(std::string(e.what()).find("node 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("slots"), std::string::npos);
  }
}

TEST(ClusterTest, ValidationRejectsNonPositiveCapacity) {
  NodeSpec good;
  good.capacity = Resources{2.0, 4.0, 100.0, 100.0};
  NodeSpec bad = good;
  bad.capacity.mem = 0.0;
  try {
    ClusterSpec spec({good, bad});
    FAIL() << "zero-capacity node must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
}

TEST(ClusterTest, ValidationRejectsNegativeTheta) {
  NodeSpec node;
  node.capacity = Resources{2.0, 4.0, 100.0, 100.0};
  EXPECT_THROW(ClusterSpec({node}, /*theta1=*/-0.1, /*theta2=*/0.5),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec({node}, /*theta1=*/0.5, /*theta2=*/-1.0),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec({node}, 0.5, 0.5, /*mem_mips_equiv=*/0.0),
               std::invalid_argument);
}

TEST(ClusterTest, ValidationRejectsZeroRate) {
  // theta1 = theta2 = 0 zeroes g(k) for every node even though the node
  // fields themselves are positive.
  NodeSpec node;
  node.cpu_mips = 2660.0;
  node.mem_gb = 4.0;
  node.capacity = Resources{2.0, 4.0, 100.0, 100.0};
  EXPECT_THROW(ClusterSpec({node}, /*theta1=*/0.0, /*theta2=*/0.0),
               std::invalid_argument);
}

TEST(ClusterTest, ValidationRejectsNonPositiveCpuAndMem) {
  NodeSpec bad;
  bad.capacity = Resources{2.0, 4.0, 100.0, 100.0};
  bad.cpu_mips = -1.0;
  EXPECT_THROW(ClusterSpec({bad}), std::invalid_argument);
  bad.cpu_mips = 2660.0;
  bad.mem_gb = 0.0;
  EXPECT_THROW(ClusterSpec({bad}), std::invalid_argument);
}

TEST(ClusterTest, ResourcesFitsAndArithmetic) {
  const Resources cap{4, 16, 100, 100};
  EXPECT_TRUE(cap.fits({4, 16, 100, 100}));
  EXPECT_FALSE(cap.fits({4.1, 1, 1, 1}));
  Resources r = cap;
  r -= Resources{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r.cpu, 3.0);
  r += Resources{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r.mem, 16.0);
  const Resources a{1, 2, 0, 0};
  const Resources b{3, 4, 0, 0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
}

// ---------------------------------------------------------------------
// Basic execution timing
// ---------------------------------------------------------------------

TEST(EngineTest, SingleTaskExactDuration) {
  // 2000 MI at 1000 MIPS = 2 s; scheduled at the period tick coincident
  // with arrival (t = 0), so makespan == 2 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 2000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 1u);
  EXPECT_EQ(m.jobs_finished, 1u);
  EXPECT_EQ(m.makespan, 2 * kSecond);
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_EQ(m.disorders, 0u);
}

TEST(EngineTest, ChainRunsSequentially) {
  // 3-task chain of 1 s each on a 4-slot node: dependencies force 3 s.
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 4), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.makespan, 3 * kSecond);
}

TEST(EngineTest, IndependentTasksRunInParallel) {
  // 4 independent 1 s tasks on a 4-slot node: 1 s total.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 4), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 1 * kSecond);
}

TEST(EngineTest, SlotLimitSerializes) {
  // 4 independent 1 s tasks on a 2-slot node: 2 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 2), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 2 * kSecond);
}

TEST(EngineTest, ResourceLimitSerializes) {
  // Node has 2 GB memory; tasks demand 1.5 GB each: despite 4 slots and
  // ample CPU, only one runs at a time.
  JobSet jobs;
  {
    Job job(0, 2);
    for (TaskIndex t = 0; t < 2; ++t) {
      job.task(t).size_mi = 1000.0;
      job.task(t).demand = Resources{1.0, 1.5, 0, 0};
    }
    ASSERT_TRUE(job.finalize(kTestRate));
    jobs.push_back(std::move(job));
  }
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 4), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 2 * kSecond);
}

TEST(EngineTest, DiamondDependencyTiming) {
  // Diamond of 1 s tasks, enough slots: 0 (1s) -> {1,2} parallel (1s) ->
  // 3 (1s) = 3 s.
  JobSet jobs;
  jobs.push_back(make_diamond_job(0, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 4), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 3 * kSecond);
}

TEST(EngineTest, MultiNodeSpreadsLoad) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 8, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(4, 2), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.run().makespan, 1 * kSecond);
}

TEST(EngineTest, ZeroRateClusterRejectedAtConstruction) {
  // A fully-degraded cluster (g(k) = 0 for every k) used to reach the
  // engine, whose time queries then had to saturate (kMaxTime t^rem,
  // -kMaxTime t^a) instead of dividing by zero. ClusterSpec validation
  // now rejects the spec before an Engine can exist — from_seconds(inf)
  // in start_task/rebase_running was never survivable, so the defect is
  // caught where it is introduced. The saturation guards remain as
  // defense-in-depth against runtime rate degradation.
  EXPECT_THROW(ClusterSpec::uniform(1, 0.0, 0.0, 2), std::invalid_argument);
}

TEST(EngineTest, LifecycleAdvancesAcrossRun) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.lifecycle(), Engine::Lifecycle::kIdle);
  engine.run();
  EXPECT_EQ(engine.lifecycle(), Engine::Lifecycle::kDone);
}

TEST(EngineDeathTest, RunningTwiceIsFatal) {
  // An Engine is single-shot: the calendar and runtime records are
  // consumed by run(), so a second run would replay arrivals against
  // stale state and silently corrupt every metric. The engine fails
  // loudly (diagnostic + abort) instead.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  engine.run();
  EXPECT_DEATH(engine.run(), "single-shot");
}

TEST(EngineTest, LeafInputsMatchSeparateAccessors) {
  // The fused accessor promises bit-identical results to composing the
  // three separate queries (priority.cpp depends on this).
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 1234.0, 0, 30 * kSecond));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 2), std::move(jobs), sched, nullptr,
                fast_params());
  const Gid g = engine.gid(0, 1);
  const Engine::LeafInputs in = engine.leaf_inputs(g);
  EXPECT_EQ(in.t_rem_s, to_seconds(engine.remaining_time(g)));
  EXPECT_EQ(in.t_wait_s, engine.accumulated_wait_s(g));
  EXPECT_EQ(in.t_allow_s, to_seconds(engine.allowable_waiting_time(g)));
}

TEST(EngineTest, LateArrivalWaitsForPeriodTick) {
  // Job arrives at 1.5 s; period is 1 s, so it is scheduled at the next
  // tick (2.0 s relative to the first arrival's tick grid anchored at
  // 1.5 s... ticks run from first arrival: 1.5, 2.5, ...). With a single
  // job the first tick at its own arrival schedules it immediately.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 1000.0, from_seconds(1.5)));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  // Makespan counts from first arrival: scheduled at 1.5 s, runs 1 s.
  EXPECT_EQ(m.makespan, 1 * kSecond);
}

TEST(EngineTest, SecondJobScheduledAtNextPeriod) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 1, 1000.0, 0));
  jobs.push_back(make_independent_job(1, 1, 1000.0, from_seconds(0.25)));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(2, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  // Job 1 arrives at 0.25 s, waits for the 1.0 s period tick, finishes at
  // 2.0 s.
  EXPECT_EQ(m.makespan, 2 * kSecond);
}

// ---------------------------------------------------------------------
// Dependency enforcement invariants
// ---------------------------------------------------------------------

TEST(EngineTest, DefaultDispatchNeverViolatesDependencies) {
  // Queue order intentionally places children before parents; the default
  // dispatcher must still never start a child early (and records no
  // disorders because selection skips unready tasks).
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 5, 500.0));
  // Reverse-queue scheduler: plans children first.
  class ReverseScheduler : public Scheduler {
   public:
    const char* name() const override { return "Reverse"; }
    std::vector<TaskPlacement> schedule(const std::vector<JobId>& pending,
                                        Engine& engine) override {
      std::vector<TaskPlacement> out;
      SimTime seq = 0;
      for (JobId j : pending) {
        const auto topo = engine.job(j).graph().topo_order();
        for (auto it = topo.rbegin(); it != topo.rend(); ++it)
          out.push_back(TaskPlacement{engine.gid(j, *it), 0, engine.now() + seq++});
      }
      return out;
    }
  } sched;
  Engine engine(test_cluster(1, 2), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 5u);
  EXPECT_EQ(m.disorders, 0u);
  EXPECT_EQ(m.makespan, from_seconds(0.5) * 5);
}

TEST(EngineTest, BlindSelectionCountsDisorders) {
  // A scheduler whose dispatch deliberately returns the queue head even
  // when unready: every such selection is a disorder.
  class BlindScheduler : public testing::RoundRobinScheduler {
   public:
    Gid select_next(int node, Engine& engine,
                    const std::vector<std::uint8_t>& excluded) override {
      for (Gid g : engine.waiting(node)) {
        if (excluded[g]) continue;
        if (!engine.available(node).fits(engine.task_info(g).demand)) continue;
        return g;  // no readiness check
      }
      return kInvalidGid;
    }
  } sched;
  JobSet jobs;
  {
    // Chain queued child-first on one node: head is always unready.
    Job job(0, 2);
    for (TaskIndex t = 0; t < 2; ++t) {
      job.task(t).size_mi = 1000.0;
      job.task(t).demand = Resources{1, 1, 0, 0};
    }
    job.add_dependency(0, 1);
    ASSERT_TRUE(job.finalize(kTestRate));
    jobs.push_back(std::move(job));
  }
  // Reverse the queue by planned start: place child before parent.
  class BlindReverse : public BlindScheduler {
   public:
    std::vector<TaskPlacement> schedule(const std::vector<JobId>& pending,
                                        Engine& engine) override {
      std::vector<TaskPlacement> out;
      for (JobId j : pending) {
        out.push_back(TaskPlacement{engine.gid(j, 1), 0, engine.now()});
        out.push_back(TaskPlacement{engine.gid(j, 0), 0, engine.now() + 1});
      }
      return out;
    }
  } blind;
  Engine engine(test_cluster(1, 1), std::move(jobs), blind, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 2u);
  EXPECT_GE(m.disorders, 1u);
}

// ---------------------------------------------------------------------
// Preemption mechanics
// ---------------------------------------------------------------------

/// Preempts the running task with gid `victim` in favour of `incoming` at
/// the first epoch where both qualify, then stops.
class OneShotPreemption : public PreemptionPolicy {
 public:
  OneShotPreemption(CheckpointMode mode) : mode_(mode) {}
  const char* name() const override { return "OneShot"; }
  CheckpointMode checkpoint_mode() const override { return mode_; }
  void on_epoch(Engine& engine) override {
    if (done_) return;
    for (int node = 0; node < static_cast<int>(engine.node_count()); ++node) {
      const auto running = engine.running(node);
      const auto waiting = engine.waiting(node);
      if (running.empty() || waiting.empty()) continue;
      last_result_ = engine.try_preempt(node, running.front(), waiting.front());
      if (last_result_ == PreemptResult::kOk) done_ = true;
      return;
    }
  }
  PreemptResult last_result() const { return last_result_; }

 private:
  CheckpointMode mode_;
  bool done_ = false;
  PreemptResult last_result_ = PreemptResult::kOk;
};

TEST(EngineTest, PreemptionSwapsTasks) {
  // Two independent 10 s tasks on a 1-slot node. At the first epoch the
  // waiting task preempts the running one; with checkpointing, total time
  // is ~20 s + overheads.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 10000.0));
  RoundRobinScheduler sched;
  OneShotPreemption policy(CheckpointMode::kCheckpoint);
  EngineParams params = fast_params();
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, &policy, params);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.preemptions, 1u);
  EXPECT_EQ(m.tasks_finished, 2u);
  // Work conserved (checkpoint): 20 s of work + ctx switch on preempt-in +
  // recovery + ctx when the victim resumes.
  const SimTime overhead = params.ctx_switch + (params.recovery + params.ctx_switch);
  EXPECT_EQ(m.makespan, 20 * kSecond + overhead);
  EXPECT_DOUBLE_EQ(m.overhead_s, to_seconds(overhead));
}

TEST(EngineTest, RestartModeLosesProgress) {
  // Same setup without checkpointing: the victim restarts from scratch.
  // Victim ran for one epoch (0.5 s) before being preempted; that work is
  // lost, so makespan exceeds the checkpointed equivalent by ~0.5 s minus
  // differing recovery costs.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 10000.0));
  RoundRobinScheduler sched;
  OneShotPreemption policy(CheckpointMode::kRestart);
  EngineParams params = fast_params();
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, &policy, params);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.preemptions, 1u);
  // Victim was preempted at the first epoch (0.5 s in) and restarts: total
  // work executed = 20 s + 0.5 s lost; restart pays ctx_switch only.
  const SimTime overhead = params.ctx_switch + params.ctx_switch;
  EXPECT_EQ(m.makespan, 20 * kSecond + from_seconds(0.5) + overhead);
}

TEST(EngineTest, TryPreemptRejectsUnreadyIncoming) {
  // Chain job: child waits behind parent on a 1-slot node; preempting the
  // parent in favour of its child is a disorder and must be refused.
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 2, 10000.0));
  RoundRobinScheduler sched;
  class ChildPreempt : public PreemptionPolicy {
   public:
    const char* name() const override { return "ChildPreempt"; }
    void on_epoch(Engine& engine) override {
      if (tried_) return;
      if (!engine.running(0).empty() && !engine.waiting(0).empty()) {
        result = engine.try_preempt(0, engine.running(0).front(),
                                    engine.waiting(0).front());
        tried_ = true;
      }
    }
    PreemptResult result = PreemptResult::kOk;

   private:
    bool tried_ = false;
  } policy;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, &policy,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(policy.result, PreemptResult::kIncomingNotReady);
  EXPECT_EQ(m.disorders, 1u);
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_EQ(m.tasks_finished, 2u);
}

TEST(EngineTest, TryPreemptValidatesArguments) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 5000.0));
  RoundRobinScheduler sched;
  class Probe : public PreemptionPolicy {
   public:
    const char* name() const override { return "Probe"; }
    void on_epoch(Engine& engine) override {
      if (tried_ || engine.running(0).empty() || engine.waiting(0).empty())
        return;
      const Gid running = engine.running(0).front();
      const Gid waiting = engine.waiting(0).front();
      // Victim not running:
      not_running = engine.try_preempt(0, waiting, running);
      // Incoming not waiting:
      not_waiting = engine.try_preempt(0, running, running);
      tried_ = true;
    }
    PreemptResult not_running = PreemptResult::kOk;
    PreemptResult not_waiting = PreemptResult::kOk;

   private:
    bool tried_ = false;
  } policy;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, &policy,
                fast_params());
  engine.run();
  EXPECT_EQ(policy.not_running, PreemptResult::kVictimNotRunning);
  EXPECT_EQ(policy.not_waiting, PreemptResult::kIncomingNotWaiting);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(EngineTest, DeadlineAccounting) {
  JobSet jobs;
  // 1 s of work, 10 s deadline: met.
  jobs.push_back(make_independent_job(0, 1, 1000.0, 0, 10 * kSecond));
  // 10 s of work, 2 s deadline: missed.
  jobs.push_back(make_independent_job(1, 1, 10000.0, 0, 2 * kSecond));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(2, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.jobs_met_deadline, 1u);
  EXPECT_EQ(m.deadline_misses, 1u);
}

TEST(EngineTest, ThroughputMetricsConsistent) {
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 10, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(2, 2), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 10u);
  EXPECT_NEAR(m.throughput_tasks_per_ms(),
              10.0 / to_millis(m.makespan), 1e-12);
}

TEST(EngineTest, UtilizationFullOnSaturatedNode) {
  // One slot, back-to-back tasks => utilization ~ 1.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 4, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_NEAR(m.slot_utilization, 1.0, 1e-6);
}

TEST(EngineTest, WaitingTimeRecorded) {
  // Two 1 s tasks, one slot: the second waits ~1 s.
  JobSet jobs;
  jobs.push_back(make_independent_job(0, 2, 1000.0));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  ASSERT_EQ(m.job_waiting_s.size(), 1u);
  // Mean of (0 s, 1 s) = 0.5 s.
  EXPECT_NEAR(m.job_waiting_s[0], 0.5, 1e-6);
  EXPECT_NEAR(m.avg_job_waiting_s(), 0.5, 1e-6);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    JobSet jobs;
    for (JobId j = 0; j < 5; ++j)
      jobs.push_back(make_chain_job(j, 4, 750.0 + 10.0 * j, j * kSecond / 3));
    RoundRobinScheduler sched;
    Engine engine(test_cluster(2, 2), std::move(jobs), sched, nullptr,
                  fast_params());
    return engine.run();
  };
  const RunMetrics a = run_once();
  const RunMetrics b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_finished, b.tasks_finished);
  EXPECT_EQ(a.job_waiting_s, b.job_waiting_s);
}

TEST(EngineTest, ReadApiExposesTaskInfo) {
  JobSet jobs;
  jobs.push_back(make_chain_job(0, 3, 1000.0, 0, 30 * kSecond));
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  EXPECT_EQ(engine.job_count(), 1u);
  EXPECT_EQ(engine.total_task_count(), 3u);
  const Gid g1 = engine.gid(0, 1);
  EXPECT_EQ(engine.job_of(g1), 0u);
  EXPECT_EQ(engine.index_of(g1), 1u);
  EXPECT_TRUE(engine.depends_on(engine.gid(0, 2), engine.gid(0, 0)));
  EXPECT_FALSE(engine.depends_on(engine.gid(0, 0), engine.gid(0, 2)));
  EXPECT_EQ(engine.state(g1), TaskState::kUnscheduled);
  EXPECT_FALSE(engine.is_ready(g1));
  EXPECT_TRUE(engine.is_ready(engine.gid(0, 0)));
  EXPECT_DOUBLE_EQ(engine.remaining_mi(g1), 1000.0);
  EXPECT_EQ(engine.exec_time(g1, 0), 1 * kSecond);
}

TEST(EngineTest, EmptyWorkloadCompletes) {
  JobSet jobs;
  RoundRobinScheduler sched;
  Engine engine(test_cluster(1, 1), std::move(jobs), sched, nullptr,
                fast_params());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.tasks_finished, 0u);
  EXPECT_EQ(m.makespan, 0);
}

TEST(EngineTest, ToStringHelpers) {
  EXPECT_STREQ(to_string(TaskState::kRunning), "running");
  EXPECT_STREQ(to_string(TaskState::kWaiting), "waiting");
  EXPECT_STREQ(to_string(PreemptResult::kOk), "ok");
  EXPECT_STREQ(to_string(PreemptResult::kIncomingNotReady),
               "incoming-not-ready");
}

}  // namespace
}  // namespace dsp
