// Concurrency stress tests for util/thread_pool.h, written to run under
// ThreadSanitizer (the tsan CMake preset): submit churn from competing
// producer threads, parallel_for fan-out, and destruction while the queue
// is still draining. Assertions are deliberately simple — the point is
// giving TSan enough interleavings to catch lock or lifetime races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace dsp {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllComplete) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    std::vector<std::future<int>> futures[kProducers];
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &executed, &futures, p] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          futures[p].push_back(pool.submit([&executed, p, i] {
            executed.fetch_add(1, std::memory_order_relaxed);
            return p * kTasksPerProducer + i;
          }));
        }
      });
    }
    for (auto& t : producers) t.join();
    for (int p = 0; p < kProducers; ++p)
      for (int i = 0; i < kTasksPerProducer; ++i)
        EXPECT_EQ(futures[p][i].get(), p * kTasksPerProducer + i);
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, RepeatedParallelForChurn) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&sum](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64u * 65u / 2u);
  }
}

TEST(ThreadPoolStressTest, ParallelForEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&calls](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexOnce) {
  // n far larger than the chunk count: the block distribution must still
  // hit every index exactly once.
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolStressTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(256,
                                 [&calls](std::size_t i) {
                                   calls.fetch_add(
                                       1, std::memory_order_relaxed);
                                   if (i == 17)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_GT(calls.load(), 0);
  EXPECT_LE(calls.load(), 256);
}

TEST(ThreadPoolStressTest, SingleWorkerParallelForRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallel_for(
      8, [&ids](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolStressTest, DestructionDrainsOutstandingTasks) {
  // The destructor promises to drain the queue before joining; every
  // submitted task must have executed once the pool is gone.
  for (int round = 0; round < 20; ++round) {
    constexpr int kTasks = 200;
    std::atomic<int> executed{0};
    {
      ThreadPool pool(3);
      for (int i = 0; i < kTasks; ++i) {
        pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // Destroyed here with most of the queue still pending.
    }
    EXPECT_EQ(executed.load(), kTasks) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolStressTest, NestedSubmitFromWorker) {
  // A task submitting follow-up work into the same pool must not
  // deadlock or race the queue.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<std::future<void>>> outers;
  outers.reserve(32);
  for (int i = 0; i < 32; ++i) {
    outers.push_back(pool.submit([&pool, &executed] {
      return pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }));
  }
  for (auto& outer : outers) outer.get().get();
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPoolStressTest, SlowTasksOverlapWithFastChurn) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&executed, i] {
      if (i % 10 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      executed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), 100);
}

}  // namespace
}  // namespace dsp
