// dsp-dataflow tests: every seeded fixture under tests/fixtures/valueflow
// fires exactly its own value-range or taint rule, the clean fixture
// stays silent, the repository's own src/ tree dataflow-scans clean, the
// CFG builder produces pinned golden graphs for the structured control
// flow it models, and inline `dsp-tidy: allow(ID)` comments suppress
// findings. Plus black-box coverage of dsp_tidy --dataflow (exit codes,
// --json via json_check, --baseline write/suppress round trip,
// --list-rules).
#include "analysis/valueflow.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/cpp_index.h"
#include "analysis/cpp_lex.h"
#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "analysis/srclint.h"

namespace {

using dsp::analysis::Cfg;
using dsp::analysis::CppIndex;
using dsp::analysis::Report;

std::string fixture(const std::string& name) {
  return std::string(DSP_VALUEFLOW_FIXTURE_DIR) + "/" + name;
}

std::set<std::string> fired_rules(const Report& report) {
  std::set<std::string> ids;
  for (const auto& d : report.diagnostics()) ids.insert(d.rule);
  return ids;
}

std::string dump(const Report& report) {
  std::string all;
  for (const auto& d : report.diagnostics())
    all += d.rule + " " + d.subject + ": " + d.message + "\n";
  return all;
}

/// Runs the dataflow rules over in-memory source text.
Report analyze_text(const std::string& path, const std::string& text) {
  CppIndex index;
  dsp::analysis::index_source(path, text, index);
  std::map<std::string, std::vector<dsp::analysis::Line>> lines;
  lines.emplace(dsp::analysis::normalize_path(path),
                dsp::analysis::lex_lines(text));
  Report report;
  dsp::analysis::analyze_value_index(index, lines, report);
  return report;
}

/// Builds the CFG of the named function in `text`.
Cfg cfg_of(const std::string& text, const std::string& name) {
  CppIndex index;
  dsp::analysis::index_source("cfg.cpp", text, index);
  index.finalize();
  for (const auto& fn : index.functions)
    if (fn.name == name) return build_cfg(fn, dsp::analysis::lex_lines(text));
  ADD_FAILURE() << "function " << name << " not indexed";
  return {};
}

void expect_fires_exactly(const std::string& file, const std::string& rule) {
  Report report;
  std::string error;
  ASSERT_TRUE(
      dsp::analysis::analyze_value_files({fixture(file)}, report, &error))
      << error;
  EXPECT_EQ(fired_rules(report), std::set<std::string>{rule})
      << file << " should fire " << rule << " and nothing else:\n"
      << dump(report);
  EXPECT_EQ(report.diagnostics().size(), 1u) << dump(report);
  for (const auto& d : report.diagnostics())
    EXPECT_NE(d.subject.find(".cpp:"), std::string::npos)
        << "subject should be path:line, got " << d.subject;
}

TEST(ValueflowTest, SeededFixturesFireExactlyTheirRule) {
  expect_fires_exactly("v000_div_zero_witness.cpp", "V000");
  expect_fires_exactly("v001_unsigned_sub_wrap.cpp", "V001");
  expect_fires_exactly("v002_narrowing_cast.cpp", "V002");
  expect_fires_exactly("v003_float_equality.cpp", "V003");
  expect_fires_exactly("v004_shift_out_of_range.cpp", "V004");
  expect_fires_exactly("v005_loop_counter_narrow.cpp", "V005");
  expect_fires_exactly("t000_tainted_index.cpp", "T000");
  expect_fires_exactly("t001_tainted_loop_bound.cpp", "T001");
  expect_fires_exactly("t002_tainted_alloc_size.cpp", "T002");
  expect_fires_exactly("t003_env_unvalidated.cpp", "T003");
}

TEST(ValueflowTest, CleanFixtureFiresNothing) {
  Report report;
  std::string error;
  ASSERT_TRUE(dsp::analysis::analyze_value_files({fixture("clean.cpp")},
                                                 report, &error))
      << error;
  EXPECT_TRUE(report.empty()) << dump(report);
}

TEST(ValueflowTest, RepositorySourceDataflowScansClean) {
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(dsp::analysis::collect_sources({DSP_SRC_DIR}, files, &error))
      << error;
  ASSERT_GT(files.size(), 40u) << "src/ tree looks truncated";
  Report report;
  ASSERT_TRUE(dsp::analysis::analyze_value_files(files, report, &error))
      << error;
  EXPECT_TRUE(report.empty()) << dump(report);
}

TEST(ValueflowTest, ValueAndTaintRulesAreInTheCatalog) {
  for (const char* id : {"V000", "V001", "V002", "V003", "V004", "V005",
                         "T000", "T001", "T002", "T003"}) {
    const auto* info = dsp::analysis::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->severity, dsp::analysis::Severity::kError) << id;
  }
}

TEST(ValueflowTest, AllowCommentSuppresses) {
  const std::string base =
      "bool drifted(double a) {\n"
      "  double x = a * 0.5;\n"
      "  double y = x + 1.0;\n"
      "  return x == y;\n"
      "}\n";
  EXPECT_EQ(fired_rules(analyze_text("adhoc.cpp", base)),
            std::set<std::string>{"V003"});

  std::string allowed = base;
  const std::string target = "return x == y;";
  const std::size_t pos = allowed.find(target);
  ASSERT_NE(pos, std::string::npos);
  allowed.replace(pos, target.size(),
                  "return x == y;  // dsp-tidy: allow(V003)");
  EXPECT_TRUE(analyze_text("adhoc.cpp", allowed).empty());
}

TEST(ValueflowTest, GuardClearsZeroWitness) {
  // The same division with and without a positivity guard: detection
  // must hinge on the branch refinement, not on the division itself.
  const std::string unguarded =
      "double f(double m) {\n"
      "  double r = 0.0;\n"
      "  if (m > 1.0) r = 2.0;\n"
      "  return m / r;\n"
      "}\n";
  EXPECT_EQ(fired_rules(analyze_text("adhoc.cpp", unguarded)),
            std::set<std::string>{"V000"});

  const std::string guarded =
      "double f(double m) {\n"
      "  double r = 0.0;\n"
      "  if (m > 1.0) r = 2.0;\n"
      "  if (r > 0.0) return m / r;\n"
      "  return 0.0;\n"
      "}\n";
  EXPECT_TRUE(analyze_text("adhoc.cpp", guarded).empty());
}

TEST(ValueflowTest, SanitizingClampSilencesTaint) {
  const std::string raw =
      "void f(std::vector<int>& v, const std::string& s) {\n"
      "  const int n = std::stoi(s);\n"
      "  v.resize(n);\n"
      "}\n";
  EXPECT_EQ(fired_rules(analyze_text("adhoc.cpp", raw)),
            std::set<std::string>{"T002"});

  const std::string clamped =
      "void f(std::vector<int>& v, const std::string& s) {\n"
      "  const int cap = 1024;\n"
      "  const int n = std::min(std::stoi(s), cap);\n"
      "  v.resize(n);\n"
      "}\n";
  EXPECT_TRUE(analyze_text("adhoc.cpp", clamped).empty());
}

// ---------------------------------------------------------------------------
// CFG golden tests
// ---------------------------------------------------------------------------

TEST(CfgTest, StraightLineBodyLandsInEntryBlock) {
  const Cfg cfg = cfg_of(
      "int twice(int x) {\n"
      "  int y = x + x;\n"
      "  return y;\n"
      "}\n",
      "twice");
  EXPECT_EQ(cfg.dump(),
            "cfg twice\n"
            "b0 (entry):\n"
            "  stmt int y = x + x\n"
            "  stmt return y\n"
            "  -> b1 fall\n"
            "b1 (exit):\n"
            "b2:\n"
            "  -> b1 fall\n");
}

TEST(CfgTest, IfElseDiamond) {
  const Cfg cfg = cfg_of(
      "int pick(int x) {\n"
      "  int r = 0;\n"
      "  if (x > 2) {\n"
      "    r = 1;\n"
      "  } else {\n"
      "    r = 2;\n"
      "  }\n"
      "  return r;\n"
      "}\n",
      "pick");
  EXPECT_EQ(cfg.dump(),
            "cfg pick\n"
            "b0 (entry):\n"
            "  stmt int r = 0\n"
            "  stmt x > 2\n"
            "  -> b2 true [x > 2]\n"
            "  -> b3 false [x > 2]\n"
            "b1 (exit):\n"
            "b2:\n"
            "  stmt r = 1\n"
            "  -> b4 fall\n"
            "b3:\n"
            "  stmt r = 2\n"
            "  -> b4 fall\n"
            "b4:\n"
            "  stmt return r\n"
            "  -> b1 fall\n"
            "b5:\n"
            "  -> b1 fall\n");
}

TEST(CfgTest, ForLoopHasHeadAndBackEdge) {
  const Cfg cfg = cfg_of(
      "int sum(int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    total += i;\n"
      "  }\n"
      "  return total;\n"
      "}\n",
      "sum");
  EXPECT_EQ(cfg.dump(),
            "cfg sum\n"
            "b0 (entry):\n"
            "  stmt int total = 0\n"
            "  stmt int i = 0\n"
            "  -> b2 fall\n"
            "b1 (exit):\n"
            "b2 [loop]:\n"
            "  stmt i < n\n"
            "  -> b3 true [i < n]\n"
            "  -> b5 false [i < n]\n"
            "b3:\n"
            "  stmt total += i\n"
            "  -> b4 fall\n"
            "b4:\n"
            "  stmt ++ i\n"
            "  -> b2 back\n"
            "b5:\n"
            "  stmt return total\n"
            "  -> b1 fall\n"
            "b6:\n"
            "  -> b1 fall\n");
}

TEST(CfgTest, WhileLoopMarksLoopHead) {
  const Cfg cfg = cfg_of(
      "int halve(int n) {\n"
      "  while (n > 1) {\n"
      "    n = n / 2;\n"
      "  }\n"
      "  return n;\n"
      "}\n",
      "halve");
  bool has_loop_head = false;
  for (const auto& b : cfg.blocks) has_loop_head |= b.is_loop_head;
  EXPECT_TRUE(has_loop_head) << cfg.dump();
  bool has_back_edge = false;
  for (const auto& b : cfg.blocks)
    for (const auto& e : b.succ)
      has_back_edge |= e.kind == dsp::analysis::EdgeKind::kBack;
  EXPECT_TRUE(has_back_edge) << cfg.dump();
}

TEST(CfgTest, UnlocatableBodyDegradesToEntryExit) {
  dsp::analysis::FunctionInfo fn;
  fn.file = "cfg.cpp";
  fn.qual = "ghost";
  fn.begin_line = 100;  // beyond the file
  fn.end_line = 120;
  const Cfg cfg = build_cfg(fn, dsp::analysis::lex_lines("int x = 0;\n"));
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_TRUE(cfg.blocks[0].stmts.empty());
  EXPECT_TRUE(cfg.blocks[1].stmts.empty());
}

// ---------------------------------------------------------------------------
// Black-box CLI tests
// ---------------------------------------------------------------------------

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cmd(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CliResult run_tidy(const std::string& args) {
  return run_cmd(std::string(DSP_TIDY_BIN) + " " + args);
}

TEST(DspTidyDataflowCliTest, FixtureDirectoryExitsOneNamingEveryRule) {
  const CliResult r =
      run_tidy("--dataflow " + std::string(DSP_VALUEFLOW_FIXTURE_DIR));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* id : {"V000", "V001", "V002", "V003", "V004", "V005",
                         "T000", "T001", "T002", "T003"})
    EXPECT_NE(r.output.find(id), std::string::npos) << id << "\n" << r.output;
}

TEST(DspTidyDataflowCliTest, CleanFixtureExitsZero) {
  const CliResult r = run_tidy("--dataflow " + fixture("clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(DspTidyDataflowCliTest, MissingFileExitsTwo) {
  const CliResult r = run_tidy("--dataflow no/such/file.cpp");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(DspTidyDataflowCliTest, UnknownRuleExitsTwo) {
  const CliResult r =
      run_tidy("--dataflow " + fixture("clean.cpp") + " --rules V999");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(DspTidyDataflowCliTest, ListRulesIncludesValueAndTaintFamilies) {
  const CliResult r = run_tidy("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("V000"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("T003"), std::string::npos) << r.output;
}

TEST(DspTidyDataflowCliTest, JsonOutputValidatesAndCarriesScanTime) {
  const std::string json = ::testing::TempDir() + "valueflow_tidy.json";
  const CliResult r = run_tidy("--dataflow " +
                               fixture("v000_div_zero_witness.cpp") +
                               " --json " + json);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const CliResult check =
      run_cmd(std::string(DSP_JSON_CHECK_BIN) + " " + json +
              " analyzer input.kind diagnostics scan.seconds summary.error");
  EXPECT_EQ(check.exit_code, 0) << check.output;
  std::remove(json.c_str());
}

TEST(DspTidyDataflowCliTest, BaselineWritesThenSuppresses) {
  const std::string baseline = ::testing::TempDir() + "valueflow_baseline.txt";
  std::remove(baseline.c_str());

  // First run: baseline absent -> findings recorded, run reports clean.
  const CliResult wrote = run_tidy("--dataflow " +
                                   fixture("v000_div_zero_witness.cpp") +
                                   " --baseline " + baseline);
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
  EXPECT_NE(wrote.output.find("wrote baseline"), std::string::npos)
      << wrote.output;
  std::ifstream in(baseline);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("V000\t", 0), 0) << line;

  // Second run: same findings are suppressed.
  const CliResult again = run_tidy("--dataflow " +
                                   fixture("v000_div_zero_witness.cpp") +
                                   " --baseline " + baseline);
  EXPECT_EQ(again.exit_code, 0) << again.output;

  // A different fixture still reports: its findings are new.
  const CliResult fresh = run_tidy("--dataflow " +
                                   fixture("t000_tainted_index.cpp") +
                                   " --baseline " + baseline);
  EXPECT_EQ(fresh.exit_code, 1) << fresh.output;
  std::remove(baseline.c_str());
}

TEST(DspTidyDataflowCliTest, ThreeModeScanOfSrcIsCleanAndShared) {
  const CliResult r = run_tidy("--srclint --flow --dataflow " +
                               std::string(DSP_SRC_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

}  // namespace
