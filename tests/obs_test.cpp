// Tests for the observability layer: metrics registry, histogram
// percentiles, preemption audit trail (unit + engine integration),
// Chrome trace export, the JSON parser, and the profiler macro.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dsp_system.h"
#include "core/preemption.h"
#include "obs/audit.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "sim/recorder.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

JobSet contended_workload(std::size_t jobs, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.job_count = jobs;
  cfg.task_scale = 0.01;
  cfg.cpu_max = 2.0;
  cfg.mem_max = 1.8;
  cfg.min_arrival_rate = 30.0;
  cfg.max_arrival_rate = 40.0;
  return WorkloadGenerator(cfg, seed).generate();
}

ClusterSpec tight_cluster() { return ClusterSpec::uniform(2, 1800.0, 2.0, 2); }

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGauges) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("events");
  c->add();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name resolves to the same object.
  EXPECT_EQ(reg.counter("events"), c);

  obs::Gauge* g = reg.gauge("load");
  g->set(0.75);
  EXPECT_DOUBLE_EQ(g->value(), 0.75);
}

TEST(MetricsRegistryTest, HistogramPercentilesOnKnownData) {
  obs::Histo h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  // Linear interpolation over 100 sorted samples (same convention as
  // util/stats): p = q * (n - 1).
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(MetricsRegistryTest, HistogramRingKeepsExactAggregates) {
  obs::Histo h(/*max_samples=*/4);
  for (int i = 1; i <= 10; ++i) h.add(i);
  const auto s = h.snapshot();
  // count/sum/min/max stay exact even though only 4 samples are retained.
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.sum, 55.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  // Percentiles come from the retained window {7, 8, 9, 10}.
  EXPECT_NEAR(s.p50, 8.5, 1e-9);
}

TEST(MetricsRegistryTest, EmptyHistogramSnapshotIsAllZero) {
  obs::Histo h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  // Percentiles of nothing are 0, not NaN — report tables render them.
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsRegistryTest, SingleSampleHistogramPercentilesCollapse) {
  obs::Histo h;
  h.add(3.25);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_DOUBLE_EQ(s.p50, 3.25);
  EXPECT_DOUBLE_EQ(s.p95, 3.25);
  EXPECT_DOUBLE_EQ(s.p99, 3.25);
}

TEST(MetricsRegistryTest, HistogramRejectsNonFiniteSamples) {
  obs::Histo h;
  h.add(1.0);
  h.add(std::nan(""));
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(2.0);
  const auto s = h.snapshot();
  // The non-finite samples are dropped entirely: they would poison
  // min/max/sum and the percentile sort.
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceWithoutInvalidatingPointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("c");
  obs::Histo* h = reg.histogram("h");
  c->add(5);
  h->add(1.0);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->snapshot().count, 0u);
  // The macro caches depend on stable addresses across reset().
  EXPECT_EQ(reg.counter("c"), c);
  EXPECT_EQ(reg.histogram("h"), h);
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsSafe) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("hits");
  obs::Histo* h = reg.histogram("lat");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        c->add();
        h->add(1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), 40000u);
  EXPECT_EQ(h->snapshot().count, 40000u);
  EXPECT_DOUBLE_EQ(h->snapshot().sum, 40000.0);
}

TEST(MetricsRegistryTest, JsonRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("hits")->add(3);
  reg.gauge("load")->set(1.5);
  reg.histogram("lat")->add(2.0);
  std::ostringstream os;
  reg.to_json(os);

  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(obs::json::parse(os.str(), root, &error)) << error;
  const auto* hits = root.at_path("counters.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->number, 3.0);
  const auto* load = root.at_path("gauges.load");
  ASSERT_NE(load, nullptr);
  EXPECT_DOUBLE_EQ(load->number, 1.5);
  const auto* lat_count = root.at_path("histograms.lat.count");
  ASSERT_NE(lat_count, nullptr);
  EXPECT_DOUBLE_EQ(lat_count->number, 1.0);
  const auto* lat_p50 = root.at_path("histograms.lat.p50");
  ASSERT_NE(lat_p50, nullptr);
  EXPECT_DOUBLE_EQ(lat_p50->number, 2.0);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  obs::json::Value v;
  EXPECT_FALSE(obs::json::parse("{", v));
  EXPECT_FALSE(obs::json::parse("{\"a\":1,}", v));
  EXPECT_FALSE(obs::json::parse("[1, 2] trailing", v));
  EXPECT_TRUE(obs::json::parse(" {\"a\": [1, true, null, \"x\"]} ", v));
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->array.size(), 4u);
}

TEST(JsonParserTest, RejectsMalformedEscapes) {
  obs::json::Value v;
  std::string error;
  EXPECT_FALSE(obs::json::parse(R"("\q")", v, &error));  // unknown escape
  EXPECT_NE(error.find("escape"), std::string::npos) << error;
  EXPECT_FALSE(obs::json::parse(R"("\u12")", v));    // truncated \u
  EXPECT_FALSE(obs::json::parse(R"("\u12zz")", v));  // non-hex \u
  EXPECT_FALSE(obs::json::parse("\"\\\"", v));       // dangling backslash
  EXPECT_FALSE(obs::json::parse("\"tab\there\"", v));  // raw control char
  EXPECT_TRUE(obs::json::parse(R"("A\n\t\\")", v));
  EXPECT_EQ(v.string, "A\n\t\\");
}

TEST(JsonParserTest, RejectsTruncatedDocuments) {
  obs::json::Value v;
  for (const char* doc :
       {"", "  ", "{\"a\":", "{\"a\"", "[1, 2", "[1,", "\"unterminated",
        "tru", "nul", "-", "{\"a\": {\"b\": [1}"}) {
    std::string error;
    EXPECT_FALSE(obs::json::parse(doc, v, &error))
        << "accepted truncated document: " << doc;
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
  }
}

TEST(JsonEscapeTest, RoundTripsThroughParser) {
  // Every hand-rolled JSON writer in obs/ routes strings through
  // json_escape; hostile content must survive a parse round-trip.
  const std::string hostile[] = {
      "plain",
      "with \"quotes\" and \\backslashes\\",
      "line\nbreaks\r\nand\ttabs",
      std::string("embedded\x01" "control\x1f" " chars"),
      "trailing backslash \\",
      "",
  };
  for (const std::string& s : hostile) {
    const std::string doc = "{\"k\":\"" + obs::json_escape(s) + "\"}";
    obs::json::Value root;
    std::string error;
    ASSERT_TRUE(obs::json::parse(doc, root, &error)) << doc << ": " << error;
    const obs::json::Value* k = root.find("k");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->string, s) << doc;
  }
}

TEST(JsonEscapeTest, WriteJsonStringMatchesEscapeHelper) {
  // write_json_string is the stream-facing wrapper over the same escaper.
  std::ostringstream os;
  obs::write_json_string(os, "a\"b\\c\nd");
  EXPECT_EQ(os.str(), "\"" + obs::json_escape("a\"b\\c\nd") + "\"");
}

TEST(JsonParserTest, RejectsDeepNestingInsteadOfOverflowing) {
  // 257 levels exceeds the parser's 256-level cap; the hostile version of
  // this document (100k levels) must be a parse error, not a stack
  // overflow.
  const auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  obs::json::Value v;
  EXPECT_TRUE(obs::json::parse(nested(256), v));
  std::string error;
  EXPECT_FALSE(obs::json::parse(nested(257), v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
  EXPECT_FALSE(obs::json::parse(nested(100000), v, &error));

  // Mixed object/array nesting shares the same cap.
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += "{\"k\":[";
  EXPECT_FALSE(obs::json::parse(mixed, v, &error));
}

TEST(ProfilerTest, ScopedTimerFeedsHistogram) {
  obs::Histo h;
  {
    obs::ScopedTimer timer(&h);
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
}

TEST(ProfilerTest, ProfileMacroRecordsIntoDefaultRegistry) {
  obs::Histo* h = obs::default_registry().histogram("test.profile_scope_s");
  const auto before = h->snapshot().count;
  {
    DSP_PROFILE("test.profile_scope_s");
  }
  EXPECT_EQ(h->snapshot().count, before + 1);
}

// ---------------------------------------------------------------------
// Preemption audit trail
// ---------------------------------------------------------------------

obs::PreemptDecision sample_decision(obs::PreemptOutcome outcome) {
  obs::PreemptDecision d;
  d.time = 1500000;
  d.node = 2;
  d.candidate = 7;
  d.victim = outcome == obs::PreemptOutcome::kNoVictim ? kInvalidGid : Gid{3};
  d.candidate_priority = 9.5;
  d.victim_priority = 1.25;
  d.normalized_gap = 4.0;
  d.rho = 2.0;
  d.delta = 0.35;
  d.epsilon = 100000;
  d.tau = 2000000;
  d.outcome = outcome;
  return d;
}

TEST(AuditTrailTest, CountsAndFiltersPerOutcome) {
  obs::PreemptionAuditTrail trail;
  trail.record(sample_decision(obs::PreemptOutcome::kFired));
  trail.record(sample_decision(obs::PreemptOutcome::kFired));
  trail.record(sample_decision(obs::PreemptOutcome::kSuppressedPP));
  trail.record(sample_decision(obs::PreemptOutcome::kBlockedByDependency));
  trail.record(sample_decision(obs::PreemptOutcome::kNoVictim));

  EXPECT_EQ(trail.total(), 5u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kFired), 2u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kSuppressedPP), 1u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kBlockedByDependency), 1u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kNoVictim), 1u);
  EXPECT_EQ(trail.with_outcome(obs::PreemptOutcome::kFired).size(), 2u);

  trail.clear();
  EXPECT_EQ(trail.total(), 0u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kFired), 0u);
}

TEST(AuditTrailTest, CsvHasHeaderAndOneRowPerDecision) {
  obs::PreemptionAuditTrail trail;
  trail.record(sample_decision(obs::PreemptOutcome::kSuppressedPP));
  trail.record(sample_decision(obs::PreemptOutcome::kNoVictim));
  std::ostringstream os;
  trail.write_csv(os);
  const std::string csv = os.str();

  EXPECT_EQ(csv.find("time_us,node,candidate,victim,candidate_priority,"
                     "victim_priority,normalized_gap,rho,delta,epsilon_us,"
                     "tau_us,urgent,pp,outcome"),
            0u);
  EXPECT_NE(csv.find("suppressed-pp"), std::string::npos);
  EXPECT_NE(csv.find("no-victim"), std::string::npos);
  // kInvalidGid victims print as "-".
  EXPECT_NE(csv.find(",-,"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(AuditTrailTest, EngineIntegrationMatchesRunMetrics) {
  DspPreemption policy;
  DspScheduler sched;
  Engine engine(tight_cluster(), contended_workload(8, 101), sched, &policy,
                fast_params());
  obs::PreemptionAuditTrail trail;
  engine.set_audit(&trail);
  const RunMetrics m = engine.run();

  // Every Algorithm-1 evaluation lands in both the trail and RunMetrics.
  EXPECT_EQ(trail.total(), m.preempt_evaluations);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kFired), m.preemptions);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kSuppressedPP),
            m.suppressed_preemptions);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kBlockedByDependency),
            m.preempt_blocked_dependency);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kNoVictim), m.preempt_no_victim);
  EXPECT_GT(trail.total(), 0u);

  // Records carry the parameters in effect and a sane shape.
  for (const auto& d : trail.decisions()) {
    EXPECT_GE(d.node, 0);
    EXPECT_NE(d.candidate, kInvalidGid);
    EXPECT_DOUBLE_EQ(d.rho, policy.params().rho);
    if (d.outcome == obs::PreemptOutcome::kFired ||
        d.outcome == obs::PreemptOutcome::kSuppressedPP) {
      EXPECT_NE(d.victim, kInvalidGid);
    }
    if (d.outcome == obs::PreemptOutcome::kNoVictim) {
      EXPECT_EQ(d.victim, kInvalidGid);
    }
  }
}

TEST(AuditTrailTest, SuppressionCountUnchangedByRecording) {
  // The audit plumbing moved the suppression tally from
  // note_suppressed_preemption() into record_preempt_decision(); a DSP
  // run with PP disabled must record zero suppressions.
  DspParams params;
  params.normalized_pp = false;
  DspPreemption policy(params);
  DspScheduler sched;
  Engine engine(tight_cluster(), contended_workload(8, 101), sched, &policy,
                fast_params());
  obs::PreemptionAuditTrail trail;
  engine.set_audit(&trail);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.suppressed_preemptions, 0u);
  EXPECT_EQ(trail.count(obs::PreemptOutcome::kSuppressedPP), 0u);
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST(ChromeTraceTest, ExportsLoadableStructure) {
  DspPreemption policy;
  DspScheduler sched;
  Engine engine(tight_cluster(), contended_workload(6, 77), sched, &policy,
                fast_params());
  TimelineRecorder recorder;
  engine.set_observer(&recorder);
  engine.run();
  ASSERT_FALSE(recorder.intervals().empty());

  std::ostringstream os;
  obs::write_chrome_trace(os, recorder, engine.node_count());

  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(obs::json::parse(os.str(), root, &error)) << error;
  const auto* unit = root.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t complete = 0, metadata = 0, instants = 0;
  for (const auto& e : events->array) {
    const auto* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    if (ph->string == "X") {
      ++complete;
      // Complete events need name/tid/ts/dur; ts and dur are in
      // microseconds == SimTime units.
      EXPECT_NE(e.find("name"), nullptr);
      EXPECT_NE(e.find("tid"), nullptr);
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number, 0.0);
    } else if (ph->string == "M") {
      ++metadata;
      EXPECT_EQ(e.find("name")->string, "process_name");
    } else if (ph->string == "i") {
      ++instants;
    }
  }
  // One interval event per recorded interval; one metadata record per
  // node plus the cluster-instants pseudo-process.
  EXPECT_EQ(complete, recorder.intervals().size());
  EXPECT_EQ(metadata, engine.node_count() + 1);
  // Scheduling rounds + epochs + job completions all become instants.
  EXPECT_EQ(instants, recorder.rounds().size() + recorder.epochs().size() +
                          recorder.job_completions().size());
}

}  // namespace
}  // namespace dsp
