// Tests for RunMetrics job records, the per-class breakdown table, and
// the umbrella header.
#include <gtest/gtest.h>

#include "dsp.h"  // the umbrella header must compile standalone
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_independent_job;
using testing::RoundRobinScheduler;

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

TEST(JobRecordTest, RecordsEveryFinishedJob) {
  JobSet jobs;
  Job a = make_independent_job(0, 2, 1000.0, 0, 10 * kSecond);
  a.set_size_class(JobSize::kSmall);
  // Tasks take exactly 1 s; a 0.5 s deadline is guaranteed to be missed.
  Job b = make_independent_job(1, 2, 1000.0, 0, 500 * kMillisecond);
  b.set_size_class(JobSize::kLarge);
  b.set_tier(JobTier::kResearch);
  jobs.push_back(std::move(a));
  jobs.push_back(std::move(b));
  RoundRobinScheduler sched;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 2), std::move(jobs), sched,
                nullptr, fast_params());
  const RunMetrics m = engine.run();

  ASSERT_EQ(m.job_records.size(), 2u);
  for (const auto& r : m.job_records) {
    EXPECT_GT(r.finish, r.arrival);
    EXPECT_EQ(r.completion_time(), r.finish - r.arrival);
    if (r.id == 0) {
      EXPECT_EQ(r.size_class, JobSize::kSmall);
      EXPECT_TRUE(r.met_deadline);
    } else {
      EXPECT_EQ(r.size_class, JobSize::kLarge);
      EXPECT_EQ(r.tier, JobTier::kResearch);
      EXPECT_FALSE(r.met_deadline);
    }
  }
}

TEST(JobRecordTest, AvgCompletionFilterByClass) {
  RunMetrics m;
  m.job_records.push_back(
      {0, JobSize::kSmall, JobTier::kProduction, 0, 10 * kSecond, 1.0, true});
  m.job_records.push_back(
      {1, JobSize::kLarge, JobTier::kProduction, 0, 30 * kSecond, 2.0, true});
  EXPECT_DOUBLE_EQ(m.avg_completion_s(), 20.0);
  const JobSize small = JobSize::kSmall;
  EXPECT_DOUBLE_EQ(m.avg_completion_s(&small), 10.0);
  const JobSize medium = JobSize::kMedium;
  EXPECT_DOUBLE_EQ(m.avg_completion_s(&medium), 0.0);
}

TEST(JobRecordTest, ClassBreakdownTable) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.01;
  DspSystem system;
  const RunMetrics m = system.run(
      ClusterSpec::ec2(4), WorkloadGenerator(cfg, 71).generate(), fast_params());
  const Table t = job_class_table(m, "per-class");
  const std::string out = t.render();
  EXPECT_NE(out.find("small"), std::string::npos);
  EXPECT_NE(out.find("medium"), std::string::npos);
  EXPECT_NE(out.find("large"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(TableIiTest, DefaultsMatchThePaper) {
  // Table II of the paper, field by field (documented deviations: tau and
  // rho — see DESIGN.md §7).
  const DspParams p;
  EXPECT_DOUBLE_EQ(p.delta, 0.35);    // minimum required ratio
  EXPECT_DOUBLE_EQ(p.gamma, 0.5);     // level coefficient in (0,1)
  EXPECT_DOUBLE_EQ(p.omega1, 0.5);    // remaining-time weight
  EXPECT_DOUBLE_EQ(p.omega2, 0.3);    // waiting-time weight
  EXPECT_DOUBLE_EQ(p.omega3, 0.2);    // allowable-waiting-time weight
  EXPECT_DOUBLE_EQ(p.omega1 + p.omega2 + p.omega3, 1.0);
  EXPECT_DOUBLE_EQ(p.theta1, 0.5);    // CPU weight in g(k)
  EXPECT_DOUBLE_EQ(p.theta2, 0.5);    // memory weight in g(k)
  const SrptPolicy srpt;              // alpha = 0.5, beta = 1 per Table II
  (void)srpt;
  const EngineParams ep;
  EXPECT_EQ(ep.ctx_switch, 50 * kMillisecond);  // sigma = 0.05 s
  EXPECT_EQ(ep.period, 5 * kMinute);  // "ran the scheduling every 5mins"
}

TEST(UmbrellaHeaderTest, ExposesCoreTypes) {
  // Touch one symbol from each subsystem to prove the umbrella pulls in
  // the full public API.
  const ClusterSpec cluster = ClusterSpec::ec2(1);
  EXPECT_EQ(cluster.size(), 1u);
  lp::Model model;
  EXPECT_FALSE(model.has_integers());
  DspParams params;
  EXPECT_DOUBLE_EQ(params.delta, 0.35);
  FailurePlan plan;
  EXPECT_TRUE(plan.empty());
  TimelineRecorder recorder;
  EXPECT_TRUE(recorder.intervals().empty());
  const TetrisScheduler tetris(TetrisScheduler::Dependency::kSimple);
  EXPECT_STREQ(tetris.name(), "TetrisW/SimDep");
}

}  // namespace
}  // namespace dsp
