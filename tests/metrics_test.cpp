// Tests for RunMetrics job records, the per-class breakdown table, and
// the umbrella header.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "dsp.h"  // the umbrella header must compile standalone
#include "obs/json.h"
#include "test_util.h"
#include "trace/workload.h"

namespace dsp {
namespace {

using testing::make_independent_job;
using testing::RoundRobinScheduler;

EngineParams fast_params() {
  EngineParams p;
  p.period = 1 * kSecond;
  p.epoch = 500 * kMillisecond;
  return p;
}

TEST(JobRecordTest, RecordsEveryFinishedJob) {
  JobSet jobs;
  Job a = make_independent_job(0, 2, 1000.0, 0, 10 * kSecond);
  a.set_size_class(JobSize::kSmall);
  // Tasks take exactly 1 s; a 0.5 s deadline is guaranteed to be missed.
  Job b = make_independent_job(1, 2, 1000.0, 0, 500 * kMillisecond);
  b.set_size_class(JobSize::kLarge);
  b.set_tier(JobTier::kResearch);
  jobs.push_back(std::move(a));
  jobs.push_back(std::move(b));
  RoundRobinScheduler sched;
  Engine engine(ClusterSpec::uniform(2, 1800.0, 2.0, 2), std::move(jobs), sched,
                nullptr, fast_params());
  const RunMetrics m = engine.run();

  ASSERT_EQ(m.job_records.size(), 2u);
  for (const auto& r : m.job_records) {
    EXPECT_GT(r.finish, r.arrival);
    EXPECT_EQ(r.completion_time(), r.finish - r.arrival);
    if (r.id == 0) {
      EXPECT_EQ(r.size_class, JobSize::kSmall);
      EXPECT_TRUE(r.met_deadline);
    } else {
      EXPECT_EQ(r.size_class, JobSize::kLarge);
      EXPECT_EQ(r.tier, JobTier::kResearch);
      EXPECT_FALSE(r.met_deadline);
    }
  }
}

TEST(JobRecordTest, AvgCompletionFilterByClass) {
  RunMetrics m;
  m.job_records.push_back(
      {0, JobSize::kSmall, JobTier::kProduction, 0, 10 * kSecond, 1.0, true});
  m.job_records.push_back(
      {1, JobSize::kLarge, JobTier::kProduction, 0, 30 * kSecond, 2.0, true});
  EXPECT_DOUBLE_EQ(m.avg_completion_s(), 20.0);
  const JobSize small = JobSize::kSmall;
  EXPECT_DOUBLE_EQ(m.avg_completion_s(&small), 10.0);
  const JobSize medium = JobSize::kMedium;
  EXPECT_DOUBLE_EQ(m.avg_completion_s(&medium), 0.0);
}

TEST(JobRecordTest, ClassBreakdownTable) {
  WorkloadConfig cfg;
  cfg.job_count = 6;
  cfg.task_scale = 0.01;
  DspSystem system;
  const RunMetrics m = system.run(
      ClusterSpec::ec2(4), WorkloadGenerator(cfg, 71).generate(), fast_params());
  const Table t = job_class_table(m, "per-class");
  const std::string out = t.render();
  EXPECT_NE(out.find("small"), std::string::npos);
  EXPECT_NE(out.find("medium"), std::string::npos);
  EXPECT_NE(out.find("large"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(MetricSeriesTest, OutOfRangeIndicesThrow) {
  MetricSeries series({"DSP", "Aalo"}, {150, 300});
  RunMetrics m;
  series.set(1, 1, m);  // in range
  EXPECT_THROW(series.set(2, 0, m), std::out_of_range);
  EXPECT_THROW(series.set(0, 2, m), std::out_of_range);
  EXPECT_THROW(series.at(2, 0), std::out_of_range);
  EXPECT_THROW(series.at(0, 2), std::out_of_range);
  try {
    series.at(5, 7);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message names the offending indices and the grid shape.
    const std::string what = e.what();
    EXPECT_NE(what.find("method=5"), std::string::npos) << what;
    EXPECT_NE(what.find("x=7"), std::string::npos) << what;
    EXPECT_NE(what.find("2 methods"), std::string::npos) << what;
  }
}

TEST(MetricSeriesTest, WritesParsableJson) {
  MetricSeries series({"DSP"}, {150, 300}, "jobs");
  RunMetrics m;
  m.makespan = 10 * kSecond;
  m.tasks_finished = 20;
  series.set(0, 0, m);
  m.tasks_finished = 40;
  series.set(0, 1, m);

  std::ostringstream os;
  write_json(os, series);
  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(obs::json::parse(os.str(), root, &error)) << error;
  EXPECT_EQ(root.at_path("x_label")->string, "jobs");
  ASSERT_EQ(root.find("cells")->array.size(), 2u);
  const auto& cell = root.find("cells")->array[0];
  EXPECT_EQ(cell.find("method")->string, "DSP");
  EXPECT_DOUBLE_EQ(cell.find("x")->number, 150.0);
  EXPECT_DOUBLE_EQ(cell.at_path("metrics.makespan_s")->number, 10.0);
  EXPECT_DOUBLE_EQ(cell.at_path("metrics.tasks_finished")->number, 20.0);
}

TEST(RunMetricsJsonTest, CarriesAuditCounters) {
  RunMetrics m;
  m.preemptions = 3;
  m.suppressed_preemptions = 5;
  m.preempt_evaluations = 11;
  m.preempt_blocked_dependency = 2;
  m.preempt_no_victim = 1;
  std::ostringstream os;
  write_json(os, m);
  obs::json::Value root;
  std::string error;
  ASSERT_TRUE(obs::json::parse(os.str(), root, &error)) << error;
  EXPECT_DOUBLE_EQ(root.at_path("preemptions")->number, 3.0);
  EXPECT_DOUBLE_EQ(root.at_path("suppressed_preemptions")->number, 5.0);
  EXPECT_DOUBLE_EQ(root.at_path("preempt_evaluations")->number, 11.0);
  EXPECT_DOUBLE_EQ(root.at_path("preempt_blocked_dependency")->number, 2.0);
  EXPECT_DOUBLE_EQ(root.at_path("preempt_no_victim")->number, 1.0);
}

TEST(TableIiTest, DefaultsMatchThePaper) {
  // Table II of the paper, field by field (documented deviations: tau and
  // rho — see DESIGN.md §7).
  const DspParams p;
  EXPECT_DOUBLE_EQ(p.delta, 0.35);    // minimum required ratio
  EXPECT_DOUBLE_EQ(p.gamma, 0.5);     // level coefficient in (0,1)
  EXPECT_DOUBLE_EQ(p.omega1, 0.5);    // remaining-time weight
  EXPECT_DOUBLE_EQ(p.omega2, 0.3);    // waiting-time weight
  EXPECT_DOUBLE_EQ(p.omega3, 0.2);    // allowable-waiting-time weight
  EXPECT_DOUBLE_EQ(p.omega1 + p.omega2 + p.omega3, 1.0);
  EXPECT_DOUBLE_EQ(p.theta1, 0.5);    // CPU weight in g(k)
  EXPECT_DOUBLE_EQ(p.theta2, 0.5);    // memory weight in g(k)
  const SrptPolicy srpt;              // alpha = 0.5, beta = 1 per Table II
  (void)srpt;
  const EngineParams ep;
  EXPECT_EQ(ep.ctx_switch, 50 * kMillisecond);  // sigma = 0.05 s
  EXPECT_EQ(ep.period, 5 * kMinute);  // "ran the scheduling every 5mins"
}

TEST(UmbrellaHeaderTest, ExposesCoreTypes) {
  // Touch one symbol from each subsystem to prove the umbrella pulls in
  // the full public API.
  const ClusterSpec cluster = ClusterSpec::ec2(1);
  EXPECT_EQ(cluster.size(), 1u);
  lp::Model model;
  EXPECT_FALSE(model.has_integers());
  DspParams params;
  EXPECT_DOUBLE_EQ(params.delta, 0.35);
  FailurePlan plan;
  EXPECT_TRUE(plan.empty());
  TimelineRecorder recorder;
  EXPECT_TRUE(recorder.intervals().empty());
  const TetrisScheduler tetris(TetrisScheduler::Dependency::kSimple);
  EXPECT_STREQ(tetris.name(), "TetrisW/SimDep");
}

}  // namespace
}  // namespace dsp
