// Deadline-rush scenario: urgent production jobs landing on a cluster
// saturated with long-running background (research) work.
//
// Demonstrates the two halves of DSP's preemption design (§IV):
//  - urgent tasks (allowable waiting time <= epsilon) evict low-priority
//    running tasks so their jobs still meet tight deadlines;
//  - the normalized-priority (PP) filter suppresses churn preemptions —
//    compare the preemption counts of DSP vs DSPW/oPP below.
//
//   $ ./deadline_rush
#include <cstdio>

#include "core/dsp_system.h"
#include "metrics/report.h"
#include "trace/workload.h"

namespace {

dsp::JobSet build_rush_workload() {
  using namespace dsp;
  JobSet jobs;
  Rng rng(7);
  JobId next_id = 0;

  // Background: 12 research jobs of long independent tasks, loose
  // deadlines, all present from t = 0. They soak every slot.
  for (int b = 0; b < 12; ++b) {
    Job job(next_id++, 8);
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      job.task(t).size_mi = rng.uniform(150000.0, 300000.0);  // minutes each
      job.task(t).demand = Resources{1.0, 0.5, 0.02, 0.02};
    }
    job.set_tier(JobTier::kResearch);
    job.set_arrival(0);
    job.set_deadline(6 * kHour);
    if (!job.finalize(1530.0)) std::abort();
    jobs.push_back(std::move(job));
  }

  // The rush: 6 production jobs arriving once the cluster is saturated,
  // each a short 2-level DAG with a deadline only met by preempting.
  for (int p = 0; p < 6; ++p) {
    Job job(next_id++, 5);
    for (TaskIndex t = 0; t < job.task_count(); ++t) {
      job.task(t).size_mi = rng.uniform(8000.0, 15000.0);  // seconds each
      job.task(t).demand = Resources{1.0, 0.5, 0.02, 0.02};
    }
    // Root task 0 fans out to the rest.
    for (TaskIndex t = 1; t < job.task_count(); ++t) job.add_dependency(0, t);
    job.set_tier(JobTier::kProduction);
    job.set_arrival(2 * kMinute + p * 20 * kSecond);
    job.set_deadline(job.arrival() + 3 * kMinute);
    if (!job.finalize(1530.0)) std::abort();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

dsp::RunMetrics run_variant(bool with_pp, const dsp::JobSet& jobs) {
  using namespace dsp;
  DspParams params;
  params.normalized_pp = with_pp;
  params.epsilon = 30 * kSecond;
  DspSystem dsp(params);
  EngineParams ep;
  ep.period = 30 * kSecond;
  ep.epoch = 5 * kSecond;
  return dsp.run(ClusterSpec::ec2(8), jobs, ep);
}

}  // namespace

int main() {
  using namespace dsp;
  const JobSet jobs = build_rush_workload();
  std::printf("workload: 12 background research jobs + 6 urgent production "
              "jobs (3-minute deadlines)\n\n");

  const RunMetrics dsp_m = run_variant(/*with_pp=*/true, jobs);
  const RunMetrics nopp_m = run_variant(/*with_pp=*/false, jobs);

  std::printf("DSP       %s\n", summarize(dsp_m).c_str());
  std::printf("DSPW/oPP  %s\n\n", summarize(nopp_m).c_str());

  std::printf("urgent production jobs met their deadline: %llu/6 (DSP)\n",
              static_cast<unsigned long long>(
                  dsp_m.jobs_met_deadline >= 12
                      ? dsp_m.jobs_met_deadline - 12
                      : dsp_m.jobs_met_deadline));
  std::printf("PP suppressed %llu churn preemptions (%llu vs %llu fired)\n",
              static_cast<unsigned long long>(dsp_m.suppressed_preemptions),
              static_cast<unsigned long long>(dsp_m.preemptions),
              static_cast<unsigned long long>(nopp_m.preemptions));
  return 0;
}
