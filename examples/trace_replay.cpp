// Trace replay: run any scheduler/preemption combination over a CSV trace.
//
//   $ ./trace_replay <trace.csv> [scheduler] [policy] [cluster] [n]
//
//     scheduler: dsp | aalo | tetris | tetris-nodep      (default dsp)
//     policy:    dsp | dsp-nopp | amoeba | natjam | srpt | none
//                                                        (default dsp)
//     cluster:   real | ec2                              (default real)
//     n:         node count                              (default profile's)
//
// Generate a compatible trace with the workload generator:
//   $ ./trace_replay --emit sample.csv 20 42   # 20 jobs, seed 42
// then replay it through different policies and compare.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/aalo.h"
#include "baselines/preempt_baselines.h"
#include "baselines/tetris.h"
#include "core/dsp_system.h"
#include "metrics/report.h"
#include "trace/stats.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace {

using namespace dsp;

std::unique_ptr<Scheduler> pick_scheduler(const std::string& name) {
  if (name == "dsp") return std::make_unique<DspScheduler>();
  if (name == "aalo") return std::make_unique<AaloScheduler>();
  if (name == "tetris")
    return std::make_unique<TetrisScheduler>(
        TetrisScheduler::Dependency::kSimple);
  if (name == "tetris-nodep")
    return std::make_unique<TetrisScheduler>(TetrisScheduler::Dependency::kNone);
  return nullptr;
}

std::unique_ptr<PreemptionPolicy> pick_policy(const std::string& name) {
  if (name == "dsp") return std::make_unique<DspPreemption>();
  if (name == "dsp-nopp") {
    DspParams params;
    params.normalized_pp = false;
    return std::make_unique<DspPreemption>(params);
  }
  if (name == "amoeba") return std::make_unique<AmoebaPolicy>();
  if (name == "natjam") return std::make_unique<NatjamPolicy>();
  if (name == "srpt") return std::make_unique<SrptPolicy>();
  return nullptr;  // "none"
}

int emit_trace(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_replay --emit <out.csv> [jobs] [seed]\n");
    return 2;
  }
  WorkloadConfig cfg;
  cfg.job_count = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 20;
  cfg.task_scale = 0.05;
  const auto seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 42u;
  const JobSet jobs = WorkloadGenerator(cfg, seed).generate();
  if (!write_trace_csv(argv[2], jobs)) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu jobs (%zu tasks) to %s\n", jobs.size(),
              total_tasks(jobs), argv[2]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--emit") == 0)
    return emit_trace(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "--stats") == 0) {
    const TraceParseResult parsed = read_trace_csv(argv[2], 2660.0);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors)
        std::fprintf(stderr, "trace error: %s\n", e.c_str());
      return 1;
    }
    std::fputs(analyze_workload(parsed.jobs).render().c_str(), stdout);
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_replay <trace.csv> [scheduler] [policy] "
                 "[cluster] [n]\n       trace_replay --emit <out.csv> [jobs] "
                 "[seed]\n       trace_replay --stats <trace.csv>\n");
    return 2;
  }

  const std::string sched_name = argc > 2 ? argv[2] : "dsp";
  const std::string policy_name = argc > 3 ? argv[3] : "dsp";
  const std::string cluster_name = argc > 4 ? argv[4] : "real";
  ClusterSpec cluster = cluster_name == "ec2"
                            ? ClusterSpec::ec2(argc > 5 ? std::atoi(argv[5]) : 30)
                            : ClusterSpec::real_cluster(
                                  argc > 5 ? std::atoi(argv[5]) : 50);

  const TraceParseResult parsed = read_trace_csv(argv[1], cluster.mean_rate());
  if (!parsed.ok()) {
    for (const auto& e : parsed.errors)
      std::fprintf(stderr, "trace error: %s\n", e.c_str());
    return 1;
  }
  std::printf("loaded %zu jobs (%zu tasks) from %s\n", parsed.jobs.size(),
              total_tasks(parsed.jobs), argv[1]);

  auto scheduler = pick_scheduler(sched_name);
  if (!scheduler) {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched_name.c_str());
    return 2;
  }
  auto policy = pick_policy(policy_name);
  if (!policy && policy_name != "none") {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }

  EngineParams ep;
  ep.period = 1 * kMinute;
  ep.epoch = 10 * kSecond;
  const RunMetrics m =
      simulate(cluster, parsed.jobs, *scheduler, policy.get(), ep);
  std::printf("%s + %s on %s(%zu):\n  %s\n", sched_name.c_str(),
              policy_name.c_str(), cluster_name.c_str(), cluster.size(),
              summarize(m).c_str());
  return 0;
}
