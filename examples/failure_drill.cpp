// Failure drill: DSP riding through node outages and stragglers.
//
// Builds a workflow of dependent jobs (ETL -> train -> report, using the
// cross-job dependency API), injects node failures and a straggler, and
// shows checkpoint-restart keeping the work loss near zero while the
// deadline-aware preemption still lands the urgent report job on time.
//
//   $ ./failure_drill
#include <cstdio>

#include "core/dsp_system.h"
#include "metrics/report.h"
#include "sim/failures.h"
#include "sim/recorder.h"
#include "trace/workload.h"

namespace {

using namespace dsp;

JobSet build_workflow_jobs() {
  WorkloadConfig cfg;
  cfg.task_scale = 0.03;
  WorkloadGenerator gen(cfg, 17);
  JobSet jobs;
  // ETL stage: two medium ingest jobs.
  jobs.push_back(gen.make_job(0, JobSize::kMedium, 0));
  jobs.push_back(gen.make_job(1, JobSize::kMedium, 0));
  // Training sweep: a large job consuming both.
  jobs.push_back(gen.make_job(2, JobSize::kLarge, 0));
  // Report: small, urgent.
  jobs.push_back(gen.make_job(3, JobSize::kSmall, 0));
  return jobs;
}

}  // namespace

int main() {
  const ClusterSpec cluster = ClusterSpec::ec2(10);
  JobSet jobs = build_workflow_jobs();

  DspSystem dsp;
  EngineParams params;
  params.period = 30 * kSecond;
  params.epoch = 5 * kSecond;

  TimelineRecorder recorder;
  Engine engine(cluster, std::move(jobs), dsp.scheduler(), &dsp.preemption(),
                params);
  engine.set_observer(&recorder);

  // Workflow: ETL jobs feed training; training feeds the report.
  engine.add_job_dependency(0, 2);
  engine.add_job_dependency(1, 2);
  engine.add_job_dependency(2, 3);

  // Fault injection: two outages and one straggling node.
  FailurePlan plan;
  plan.add_outage(/*node=*/2, /*at=*/2 * kMinute, /*duration=*/3 * kMinute);
  plan.add_outage(/*node=*/7, /*at=*/10 * kMinute, /*duration=*/5 * kMinute);
  plan.add_slowdown(/*node=*/4, /*at=*/5 * kMinute, /*duration=*/10 * kMinute,
                    /*factor=*/0.4);
  engine.set_failure_plan(plan);

  const RunMetrics m = engine.run();

  std::printf("4-job workflow (ETL x2 -> train -> report) on 10 EC2 nodes,\n"
              "2 node outages + 1 straggler injected\n\n");
  std::printf("%s\n\n", summarize(m).c_str());
  std::printf("node failures survived : %llu\n",
              static_cast<unsigned long long>(m.node_failures));
  std::printf("tasks killed by faults : %llu\n",
              static_cast<unsigned long long>(m.tasks_killed_by_failure));
  std::printf("work lost (checkpointed): %.0f MI\n", m.work_lost_mi);
  std::printf("schedule rounds         : %zu\n", recorder.schedule_rounds());

  // Workflow completion order, from the recorded timeline.
  std::printf("\njob completions:\n");
  for (const auto& [t, j] : recorder.job_completions())
    std::printf("  t=%-10s job %u\n", format_time(t).c_str(), j);
  return m.jobs_finished == 4 ? 0 : 1;
}
