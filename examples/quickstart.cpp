// Quickstart: build the paper's Fig. 2 DAG by hand, schedule it with DSP,
// and inspect the run metrics.
//
//   $ ./quickstart
//
// Walks through the full public API surface: Job construction, dependency
// edges, finalization, cluster profiles, DspSystem, and RunMetrics.
#include <cstdio>

#include "core/dsp_system.h"
#include "metrics/report.h"
#include "sim/cluster.h"

int main() {
  using namespace dsp;

  // --- 1. Build a job: the Fig. 2 example DAG --------------------------
  // T1 feeds {T2, T3}; T2 feeds {T4, T5}; T3 feeds {T6, T7} (0-indexed).
  Job job(/*id=*/0, /*task_count=*/7);
  for (TaskIndex t = 0; t < 7; ++t) {
    Task& task = job.task(t);
    task.size_mi = 50000.0;  // ~25 s on a 2 GHz-class node
    task.demand = Resources{/*cpu=*/1.0, /*mem=*/0.5, /*disk=*/0.02,
                            /*bw=*/0.02};
  }
  job.add_dependency(0, 1);
  job.add_dependency(0, 2);
  job.add_dependency(1, 3);
  job.add_dependency(1, 4);
  job.add_dependency(2, 5);
  job.add_dependency(2, 6);

  // Arrival & deadline, then finalize: computes DAG levels and the
  // per-level task deadlines of §IV-B.
  job.set_arrival(0);
  job.set_deadline(5 * kMinute);
  const ClusterSpec cluster = ClusterSpec::ec2(/*n=*/4);
  if (!job.finalize(cluster.mean_rate())) {
    std::fprintf(stderr, "dependency graph is cyclic!\n");
    return 1;
  }

  std::printf("Job with %zu tasks, DAG depth %d, critical path %s\n",
              job.task_count(), job.graph().depth(),
              format_time(job.critical_path_time(cluster.mean_rate())).c_str());
  for (TaskIndex t = 0; t < job.task_count(); ++t)
    std::printf("  T%u: level %d, deadline %s\n", t + 1, job.task(t).level,
                format_time(job.task(t).deadline).c_str());

  // --- 2. Run the full DSP system --------------------------------------
  JobSet jobs;
  jobs.push_back(std::move(job));

  DspParams params;  // Table II defaults
  DspSystem dsp(params);
  EngineParams engine_params;
  engine_params.period = 10 * kSecond;  // schedule promptly for a tiny demo
  engine_params.epoch = 1 * kSecond;

  const RunMetrics metrics = dsp.run(cluster, std::move(jobs), engine_params);

  // --- 3. Inspect the results ------------------------------------------
  std::printf("\n%s\n", summarize(metrics).c_str());
  std::printf("deadline %s: %s\n", format_time(5 * kMinute).c_str(),
              metrics.jobs_met_deadline == 1 ? "MET" : "MISSED");
  return metrics.jobs_met_deadline == 1 ? 0 : 1;
}
