// Analytics-pipeline scenario: the data-parallel workloads the paper's
// introduction motivates (MapReduce/Spark-style multi-stage analytics).
//
// Synthesizes a mixed workload of small/medium/large DAG jobs — ETL fans,
// shuffle diamonds, ML iteration chains arise from the generator's DAG
// shapes — and compares the full DSP system against Tetris (with simple
// dependency handling) on the same cluster.
//
//   $ ./analytics_pipeline [jobs=30] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "baselines/tetris.h"
#include "core/dsp_system.h"
#include "metrics/report.h"
#include "trace/workload.h"

int main(int argc, char** argv) {
  using namespace dsp;
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  // Workload: the paper's recipe at 1/20 task scale so the demo finishes
  // in seconds. Small, medium and large jobs in equal parts; DAGs capped
  // at 5 levels / 15 dependents as in §V.
  WorkloadConfig cfg;
  cfg.job_count = n_jobs;
  cfg.task_scale = 0.05;
  WorkloadGenerator generator(cfg, seed);
  const JobSet jobs = generator.generate();

  std::size_t tasks = 0;
  double work_hours = 0.0;
  for (const auto& j : jobs) {
    tasks += j.task_count();
    work_hours += j.total_work_mi();
  }
  const ClusterSpec cluster = ClusterSpec::real_cluster(/*n=*/20);
  work_hours /= cluster.mean_rate() * 3600.0;
  std::printf("workload: %zu jobs, %zu tasks, ~%.1f node-hours of work\n\n",
              jobs.size(), tasks, work_hours);

  EngineParams engine_params;
  engine_params.period = 1 * kMinute;
  engine_params.epoch = 10 * kSecond;

  // --- DSP: ILP-guided placement + dependency-aware preemption ---------
  DspSystem dsp;
  const RunMetrics dsp_m = dsp.run(cluster, jobs, engine_params);
  std::printf("DSP            %s\n", summarize(dsp_m).c_str());

  // --- Tetris with simple dependency handling --------------------------
  TetrisScheduler tetris(TetrisScheduler::Dependency::kSimple);
  const RunMetrics tetris_m =
      simulate(cluster, jobs, tetris, nullptr, engine_params);
  std::printf("TetrisW/SimDep %s\n\n", summarize(tetris_m).c_str());

  const double speedup = to_seconds(tetris_m.makespan) /
                         std::max(1.0, to_seconds(dsp_m.makespan));
  std::printf("DSP makespan speedup over Tetris: %.2fx\n", speedup);
  std::printf("deadlines met: DSP %llu/%zu, Tetris %llu/%zu\n\n",
              static_cast<unsigned long long>(dsp_m.jobs_met_deadline),
              jobs.size(),
              static_cast<unsigned long long>(tetris_m.jobs_met_deadline),
              jobs.size());
  std::fputs(job_class_table(dsp_m, "DSP results by job size class")
                 .render().c_str(), stdout);
  return 0;
}
